//! Machine-level differential tests: the event-driven, time-skipping run
//! loops must produce *identical* results — execution time, every pipeline
//! statistic, memory counters, ESW/slippage measurements — to the retained
//! naive reference loops, on every PERFECT workload and on random kernels.
//!
//! This is the proof obligation behind the scheduler rewrite: all paper
//! tables and figures are bit-for-bit unchanged.

use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_mem::{DecoupledMemoryConfig, PrefetchBufferConfig};
use dae_ooo::RetirePolicy;
use dae_trace::expand;
use dae_workloads::{random_kernel, PerfectProgram};
use proptest::prelude::*;

const WINDOWS: [usize; 3] = [4, 32, 64];
const MDS: [u64; 2] = [0, 60];

/// A DM configuration with fully independent per-unit shapes — the
/// asymmetric-clock engine must stay exact however differently the two
/// units are clocked by their own workloads.
#[allow(clippy::too_many_arguments)]
fn asymmetric_dm_config(
    au_window: Option<usize>,
    du_window: Option<usize>,
    au_width: usize,
    du_width: usize,
    au_retire: RetirePolicy,
    du_retire: RetirePolicy,
    transfer_latency: u64,
    md: u64,
) -> DmConfig {
    let mut cfg = DmConfig::paper(32, md);
    cfg.au.window_size = au_window;
    cfg.du.window_size = du_window;
    cfg.au.issue_width = au_width;
    cfg.du.issue_width = du_width;
    cfg.au.retire = au_retire;
    cfg.du.retire = du_retire;
    cfg.transfer_latency = transfer_latency;
    cfg
}

#[test]
fn every_perfect_program_matches_on_the_dm() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(60);
        for window in WINDOWS {
            for md in MDS {
                let machine = DecoupledMachine::new(DmConfig::paper(window, md));
                assert_eq!(
                    machine.run(&trace),
                    machine.run_reference(&trace),
                    "{program} w={window} md={md}"
                );
            }
        }
        let unlimited = DecoupledMachine::new(DmConfig::paper_unlimited(60));
        assert_eq!(
            unlimited.run(&trace),
            unlimited.run_reference(&trace),
            "{program} unlimited"
        );
    }
}

#[test]
fn every_perfect_program_matches_on_the_swsm() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(60);
        for window in WINDOWS {
            for md in MDS {
                let machine = SuperscalarMachine::new(SwsmConfig::paper(window, md));
                assert_eq!(
                    machine.run(&trace),
                    machine.run_reference(&trace),
                    "{program} w={window} md={md}"
                );
            }
        }
        let unlimited = SuperscalarMachine::new(SwsmConfig::paper_unlimited(60));
        assert_eq!(
            unlimited.run(&trace),
            unlimited.run_reference(&trace),
            "{program} unlimited"
        );
    }
}

#[test]
fn every_perfect_program_matches_on_the_scalar_reference() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(60);
        for md in MDS {
            let machine = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(
                machine.run(&trace),
                machine.run_reference(&trace),
                "{program} md={md}"
            );
        }
    }
}

/// Strongly mismatched AU/DU shapes on real workloads: a tiny AU against a
/// huge DU (and vice versa), unequal widths, mixed retirement policies and
/// transfer latencies.  Under asymmetric clocking the two units run on
/// completely different step schedules here, so any horizon/wakeup bug that
/// symmetric configurations mask shows up as a differential mismatch.
#[test]
fn mismatched_unit_shapes_match_on_the_dm() {
    let in_order = RetirePolicy::InOrderAtComplete;
    let free = RetirePolicy::FreeAtIssue;
    let configs = [
        asymmetric_dm_config(Some(4), Some(64), 4, 5, in_order, in_order, 1, 60),
        asymmetric_dm_config(Some(64), Some(4), 2, 7, in_order, in_order, 1, 60),
        asymmetric_dm_config(None, Some(8), 5, 1, in_order, in_order, 0, 40),
        asymmetric_dm_config(Some(8), None, 1, 6, in_order, in_order, 3, 60),
        asymmetric_dm_config(Some(16), Some(48), 3, 2, free, in_order, 2, 20),
        asymmetric_dm_config(Some(48), Some(16), 6, 3, in_order, free, 1, 0),
    ];
    for program in [PerfectProgram::Mdg, PerfectProgram::Track] {
        let trace = program.workload().trace(40);
        for (i, cfg) in configs.iter().enumerate() {
            let machine = DecoupledMachine::new(*cfg);
            assert_eq!(
                machine.run(&trace),
                machine.run_reference(&trace),
                "{program} asymmetric config #{i}"
            );
        }
    }
}

#[test]
fn finite_memory_structures_stay_exact() {
    // Finite decoupled-memory capacity exercises the can_accept Poll gate;
    // a finite prefetch buffer exercises eviction-driven gate regression.
    let trace = PerfectProgram::Mdg.workload().trace(50);

    let mut dm_cfg = DmConfig::paper(16, 40);
    dm_cfg.decoupled_memory = DecoupledMemoryConfig {
        capacity: Some(8),
        bypass: None,
    };
    let dm = DecoupledMachine::new(dm_cfg);
    assert_eq!(dm.run(&trace), dm.run_reference(&trace));

    let mut swsm_cfg = SwsmConfig::paper(16, 40);
    swsm_cfg.prefetch_buffer = PrefetchBufferConfig { capacity: Some(8) };
    let swsm = SuperscalarMachine::new(swsm_cfg);
    assert_eq!(swsm.run(&trace), swsm.run_reference(&trace));
}

#[test]
fn memory_differentials_beyond_the_event_ring_size_stay_exact() {
    // Regression test for `EventRing::grow`: the ring starts at 256
    // per-cycle buckets and no paper-grid configuration (MD ≤ 80) ever
    // pushed an event further ahead than that.  An MD > 256 queues
    // arrival re-evaluations (DM consume gates) and completion wakeups
    // (scalar blocking loads) past the initial capacity *mid-run*, with a
    // wrapped base — the re-bucketing path the unit tests in
    // `dae-ooo/src/calendar.rs` now pin directly.
    for program in [PerfectProgram::Trfd, PerfectProgram::Mdg] {
        let trace = program.workload().trace(40);
        for md in [257, 300, 1000] {
            let dm = DecoupledMachine::new(DmConfig::paper(16, md));
            assert_eq!(
                dm.run(&trace),
                dm.run_reference(&trace),
                "DM mismatch on {program} at md={md}"
            );
            let swsm = SuperscalarMachine::new(SwsmConfig::paper(16, md));
            assert_eq!(
                swsm.run(&trace),
                swsm.run_reference(&trace),
                "SWSM mismatch on {program} at md={md}"
            );
            let scalar = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(
                scalar.run(&trace),
                scalar.run_reference(&trace),
                "scalar mismatch on {program} at md={md}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random kernels: the DM agrees with its reference across windows and
    /// memory differentials (loss-of-decoupling copies, AU self loads and
    /// multi-consumer transactions all arise here).
    #[test]
    fn random_kernels_match_on_the_dm(
        seed in 0u64..5000,
        stmts in 6usize..32,
        window in 2usize..48,
        md in 0u64..80,
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let machine = DecoupledMachine::new(DmConfig::paper(window, md));
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }

    /// Random kernels on the SWSM, including small windows where prefetches
    /// and accesses fight for slots.
    #[test]
    fn random_kernels_match_on_the_swsm(
        seed in 0u64..5000,
        stmts in 6usize..32,
        window in 2usize..48,
        md in 0u64..80,
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let machine = SuperscalarMachine::new(SwsmConfig::paper(window, md));
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }

    /// Random kernels under randomly *asymmetric* per-unit configurations:
    /// mismatched window sizes (including unlimited), issue and dispatch
    /// widths, retirement policies and transfer latencies between the AU
    /// and DU.  This is the differential proof for the per-unit clocks —
    /// each unit's step schedule is driven by its own shape, not its
    /// peer's.
    #[test]
    fn random_asymmetric_unit_configs_match_on_the_dm(
        seed in 0u64..5000,
        stmts in 6usize..28,
        au_window in (0usize..50).prop_map(|w| (w >= 4).then(|| w - 2)),
        du_window in (0usize..50).prop_map(|w| (w >= 4).then(|| w - 2)),
        au_width in 1usize..7,
        du_width in 1usize..7,
        au_free_retire in any::<bool>(),
        du_free_retire in any::<bool>(),
        transfer in 0u64..4,
        md in 0u64..80,
    ) {
        let retire = |f| if f { RetirePolicy::FreeAtIssue } else { RetirePolicy::InOrderAtComplete };
        let cfg = asymmetric_dm_config(
            au_window,
            du_window,
            au_width,
            du_width,
            retire(au_free_retire),
            retire(du_free_retire),
            transfer,
            md,
        );
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 18);
        let machine = DecoupledMachine::new(cfg);
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }

    /// Random kernels on the scalar reference.
    #[test]
    fn random_kernels_match_on_the_scalar_reference(
        seed in 0u64..5000,
        stmts in 6usize..32,
        md in 0u64..80,
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let machine = ScalarReference::new(ScalarConfig::new(md));
        prop_assert_eq!(machine.run(&trace), machine.run_reference(&trace));
    }
}
