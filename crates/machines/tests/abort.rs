//! Cooperative mid-simulation abort: the run engine polls the installed
//! [`AbortToken`] and unwinds with [`AbortedSimulation`], so a cancelled
//! point stops orders of magnitude before its natural completion.

use dae_machines::{
    with_abort_token, AbortToken, AbortedSimulation, DecoupledMachine, DmConfig,
    SuperscalarMachine, SwsmConfig,
};
use dae_workloads::PerfectProgram;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A pre-set token aborts a run on its very first engine iteration, for
/// every event-driven machine.
#[test]
fn a_preset_token_aborts_immediately() {
    let trace = PerfectProgram::Trfd.workload().trace(200);
    let token = AbortToken::new();
    token.abort();

    let dm = catch_unwind(AssertUnwindSafe(|| {
        with_abort_token(&token, || {
            DecoupledMachine::new(DmConfig::paper(32, 60)).run(&trace)
        })
    }));
    let payload = dm.expect_err("the DM run must abort");
    assert!(
        payload.downcast_ref::<AbortedSimulation>().is_some(),
        "the unwind payload must be the abort marker"
    );

    let swsm = catch_unwind(AssertUnwindSafe(|| {
        with_abort_token(&token, || {
            SuperscalarMachine::new(SwsmConfig::paper(32, 60)).run(&trace)
        })
    }));
    assert!(swsm
        .expect_err("the SWSM run must abort")
        .downcast_ref::<AbortedSimulation>()
        .is_some());
}

/// Runs without an installed token are untouched: same results as before
/// the instrumentation, no unwind.
#[test]
fn runs_without_a_token_are_unaffected() {
    let trace = PerfectProgram::Mdg.workload().trace(150);
    let bare = DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace);
    let token = AbortToken::new(); // never aborted
    let under_token = with_abort_token(&token, || {
        DecoupledMachine::new(DmConfig::paper(16, 60)).run(&trace)
    });
    assert_eq!(
        bare, under_token,
        "an unsignalled token must change nothing"
    );
}

/// The acceptance criterion: a long-running point aborts mid-simulation
/// with latency far below its full runtime.  The trace is lowered once up
/// front (as the sweep drivers do — lowering is not cancellable) and sized
/// until one uncancelled simulation takes a measurable wall time; then the
/// same simulation is aborted shortly after it starts, and the elapsed
/// time must stay well under the full runtime (generous margins — this
/// guards against "cancellation waits for the point to finish"
/// regressions, not against scheduler jitter).
#[test]
fn abort_latency_is_far_below_the_full_runtime() {
    let machine = DecoupledMachine::new(DmConfig::paper(64, 60));
    // Size the point so one full pre-lowered simulation is comfortably
    // measurable (≥ 120 ms).
    let mut iterations = 2_000;
    let (program, instructions, full) = loop {
        let trace = PerfectProgram::Trfd.workload().trace(iterations);
        let program = dae_trace::partition(&trace, DmConfig::paper(64, 60).partition_mode);
        let start = Instant::now();
        let _ = machine.run_lowered(&program, trace.len());
        let full = start.elapsed();
        if full >= Duration::from_millis(120) || iterations >= 512_000 {
            break (program, trace.len(), full);
        }
        iterations *= 2;
    };

    let token = AbortToken::new();
    let aborter = {
        let token = token.clone();
        let delay = full / 10;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            token.abort();
        })
    };
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_abort_token(&token, || machine.run_lowered(&program, instructions))
    }));
    let aborted_after = start.elapsed();
    aborter.join().expect("aborter thread");

    assert!(
        result
            .expect_err("the run must abort")
            .downcast_ref::<AbortedSimulation>()
            .is_some(),
        "the unwind payload must be the abort marker"
    );
    assert!(
        aborted_after < full / 2,
        "abort latency must be far below the full runtime \
         (full: {full:?}, aborted after: {aborted_after:?})"
    );
}
