//! Determinism and configuration-independence checks for the machine models.
//!
//! The simulators must be pure functions of (trace, configuration): repeated
//! runs give bit-identical results, results do not depend on unrelated
//! configuration fields, and the detailed statistics are reproducible enough
//! to be quoted in EXPERIMENTS.md.

use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_workloads::{reduction, stream, PerfectProgram};

#[test]
fn repeated_runs_are_bit_identical() {
    for program in [
        PerfectProgram::Adm,
        PerfectProgram::Mdg,
        PerfectProgram::Track,
    ] {
        let trace = program.workload().trace(150);
        let dm_config = DmConfig::paper(32, 60);
        let first = DecoupledMachine::new(dm_config).run(&trace);
        let second = DecoupledMachine::new(dm_config).run(&trace);
        assert_eq!(first, second, "{program}: DM runs must be deterministic");

        let swsm_config = SwsmConfig::paper(32, 60);
        let first = SuperscalarMachine::new(swsm_config).run(&trace);
        let second = SuperscalarMachine::new(swsm_config).run(&trace);
        assert_eq!(first, second, "{program}: SWSM runs must be deterministic");
    }
}

#[test]
fn trace_regeneration_is_deterministic() {
    for program in PerfectProgram::ALL {
        let a = program.workload().trace(100);
        let b = program.workload().trace(100);
        assert_eq!(a, b, "{program}: regenerated traces must be identical");
    }
}

#[test]
fn machines_reuse_is_safe() {
    // A machine value can be reused across traces and the results only
    // depend on the trace passed in.
    let machine = DecoupledMachine::new(DmConfig::paper(16, 40));
    let stream_trace = stream().trace(120);
    let reduction_trace = reduction().trace(120);
    let s1 = machine.run(&stream_trace);
    let r1 = machine.run(&reduction_trace);
    let s2 = machine.run(&stream_trace);
    assert_eq!(s1, s2);
    assert_ne!(s1.summary.cycles, 0);
    assert_ne!(r1.summary.cycles, 0);
}

#[test]
fn unrelated_configuration_fields_do_not_change_results() {
    let trace = PerfectProgram::Qcd.workload().trace(120);

    // The transfer latency only matters when cross-unit copies exist; QCD has
    // none, so changing it must not change the result.
    let baseline = DecoupledMachine::new(DmConfig::paper(32, 60)).run(&trace);
    let mut config = DmConfig::paper(32, 60);
    config.transfer_latency = 5;
    let with_slow_copies = DecoupledMachine::new(config).run(&trace);
    assert_eq!(baseline.summary.cycles, with_slow_copies.summary.cycles);

    // TRACK does have loss-of-decoupling copies, so there the transfer
    // latency must matter.
    let track = PerfectProgram::Track.workload().trace(120);
    let fast = DecoupledMachine::new(DmConfig::paper(32, 60)).run(&track);
    let mut slow_config = DmConfig::paper(32, 60);
    slow_config.transfer_latency = 8;
    let slow = DecoupledMachine::new(slow_config).run(&track);
    assert!(slow.summary.cycles >= fast.summary.cycles);
}

#[test]
fn scalar_reference_is_insensitive_to_everything_but_md_and_latencies() {
    let trace = PerfectProgram::Dyfesm.workload().trace(100);
    let a = ScalarReference::new(ScalarConfig::new(60)).run(&trace);
    let b = ScalarReference::new(ScalarConfig::new(60)).run(&trace);
    assert_eq!(a, b);
    let faster_memory = ScalarReference::new(ScalarConfig::new(10)).run(&trace);
    assert!(faster_memory.cycles() < a.cycles());
}

#[test]
fn detailed_statistics_are_stable_across_runs() {
    let trace = PerfectProgram::Flo52q.workload().trace(200);
    let config = DmConfig::paper(24, 60);
    let first = DecoupledMachine::new(config).run(&trace);
    let second = DecoupledMachine::new(config).run(&trace);
    assert_eq!(first.esw, second.esw);
    assert_eq!(first.memory, second.memory);
    assert_eq!(first.au, second.au);
    assert_eq!(first.du, second.du);
    assert_eq!(first.partition, second.partition);
}
