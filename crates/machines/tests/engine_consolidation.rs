//! Structural guard for the shared multi-unit engine.
//!
//! PR 1 left each machine with its own hand-rolled run loop; the engine
//! refactor moved the clock, the per-unit horizon bookkeeping and the
//! idle-advance boilerplate into `src/engine.rs` once.  This test pins that
//! consolidation: if time-skip plumbing creeps back into a machine file,
//! the per-machine duplication the refactor removed is returning — the
//! fix belongs in the engine, not in `dm.rs` / `swsm.rs` / `scalar.rs`.

const MACHINE_SOURCES: [(&str, &str); 3] = [
    ("dm.rs", include_str!("../src/dm.rs")),
    ("swsm.rs", include_str!("../src/swsm.rs")),
    ("scalar.rs", include_str!("../src/scalar.rs")),
];

const ENGINE_SOURCE: &str = include_str!("../src/engine.rs");

#[test]
fn machine_files_carry_no_run_loop_boilerplate() {
    // The identifiers of the time-skip protocol, and the shape of the old
    // hand-rolled loops.  None of them may appear in a machine file — the
    // engine owns them all.
    let banned = [
        "next_activity",
        "idle_advance",
        "safety_bound:", // per-machine bound constants / loop-local state
        "while !unit",   // the old single-unit loop heads
        "while !(",      // the old DM loop head
        "now += 1",
        "now = next",
    ];
    for (name, source) in MACHINE_SOURCES {
        for pattern in banned {
            assert!(
                !source.contains(pattern),
                "{name} contains `{pattern}` — run-loop logic belongs in engine.rs"
            );
        }
    }
}

#[test]
fn the_engine_owns_the_clocking_protocol() {
    for needed in ["next_activity", "idle_advance", "run_event", "run_lockstep"] {
        assert!(
            ENGINE_SOURCE.contains(needed),
            "engine.rs lost `{needed}` — did the protocol move without updating this guard?"
        );
    }
}

#[test]
fn every_machine_runs_through_the_engine() {
    for (name, source) in MACHINE_SOURCES {
        assert!(
            source.contains("engine::run_event"),
            "{name} no longer uses the shared event-driven engine"
        );
        assert!(
            source.contains("engine::run_lockstep"),
            "{name} no longer drives its reference path through the engine"
        );
    }
}
