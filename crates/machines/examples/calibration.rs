//! Calibration probe: prints the headline quantities of the paper for every
//! PERFECT workload model, so the synthetic kernels can be checked against
//! the qualitative behaviour reported in the paper.
//!
//! Run with `cargo run --release -p dae-machines --example calibration`.

use dae_machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae_workloads::PerfectProgram;

fn main() {
    let iters = 600;

    println!("== LHE at md=60 (unlimited window and selected windows) ==");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "prog", "w8", "w16", "w32", "w64", "w128", "inf"
    );
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(iters);
        let mut row = format!("{:<8}", program.name());
        for window in [Some(8usize), Some(16), Some(32), Some(64), Some(128), None] {
            let (near_cfg, far_cfg) = match window {
                Some(w) => (DmConfig::paper(w, 0), DmConfig::paper(w, 60)),
                None => (DmConfig::paper_unlimited(0), DmConfig::paper_unlimited(60)),
            };
            let near = DecoupledMachine::new(near_cfg).run(&trace).cycles() as f64;
            let far = DecoupledMachine::new(far_cfg).run(&trace).cycles() as f64;
            row += &format!(" {:>6.3}", near / far);
        }
        println!("{row}");
    }

    println!("\n== DM vs SWSM speedups vs scalar (FLO52Q / MDG / TRACK) ==");
    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(iters);
        for md in [0u64, 60] {
            let scalar = ScalarReference::new(ScalarConfig::new(md)).analytic_cycles(&trace) as f64;
            print!("{:<8} md={:<3}", program.name(), md);
            for w in [8usize, 16, 32, 48, 64, 96, 128] {
                let dm = DecoupledMachine::new(DmConfig::paper(w, md))
                    .run(&trace)
                    .cycles() as f64;
                let sw = SuperscalarMachine::new(SwsmConfig::paper(w, md))
                    .run(&trace)
                    .cycles() as f64;
                print!("  w{w}: {:.1}/{:.1}", scalar / dm, scalar / sw);
            }
            println!();
        }
    }

    println!("\n== Equivalent window ratio (md=60, DM window 32) ==");
    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(iters);
        let dm = DecoupledMachine::new(DmConfig::paper(32, 60))
            .run(&trace)
            .cycles();
        let mut ratio = None;
        for w in 8..=1024usize {
            let sw = SuperscalarMachine::new(SwsmConfig::paper(w, 60))
                .run(&trace)
                .cycles();
            if sw <= dm {
                ratio = Some(w as f64 / 32.0);
                break;
            }
        }
        println!(
            "{:<8} dm32 cycles={} equivalent ratio={:?}",
            program.name(),
            dm,
            ratio
        );
    }
}
