//! Driver traits over the two unit simulators.
//!
//! A machine run loop does not care *which* scheduler implementation powers
//! a unit — only that it can be stepped, probed and (for the event-driven
//! implementation) clocked asymmetrically.  These traits let the shared
//! multi-unit engine in `dae-machines` drive [`UnitSim`] (the event-driven
//! scheduler, through [`EventUnit`]) and [`NaiveUnitSim`] (the retained
//! reference oracle, through [`SchedulerUnit`] alone) with one loop body
//! per clocking discipline instead of one per machine per scheduler.

use crate::{ExecContext, NaiveUnitSim, UnitSim, UnitStats};
use dae_isa::Cycle;

/// What every unit scheduler exposes to a machine run loop: cycle stepping
/// plus the read-side probes the machines sample (completions for cross-unit
/// dependences, window probes for slippage measurements, counters for the
/// results).
pub trait SchedulerUnit {
    /// Executes one machine cycle (see [`UnitSim::step`]).
    fn step<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C);

    /// `true` once the stream is fully dispatched and every window slot has
    /// been released.
    fn is_done(&self) -> bool;

    /// The completion cycle of stream instruction `idx`, if it has issued
    /// (the other unit of a decoupled machine resolves cross dependences
    /// against these).
    fn completion(&self, idx: usize) -> Option<Cycle>;

    /// The largest completion cycle observed so far.
    fn max_completion(&self) -> Cycle;

    /// Counters accumulated so far.
    fn stats(&self) -> &UnitStats;

    /// Trace position of the oldest instruction still holding a window slot.
    fn oldest_inflight_trace_pos(&self) -> Option<usize>;

    /// Trace position of the most recently dispatched instruction.
    fn youngest_dispatched_trace_pos(&self) -> Option<usize>;
}

/// The extra contract of the event-driven scheduler that makes per-unit
/// asymmetric clocking possible: the unit can name its own horizon
/// ([`EventUnit::next_activity`]), bulk-account skipped idle spans
/// ([`EventUnit::idle_advance`]), accept externally injected wakeups that
/// re-arm that horizon ([`EventUnit::schedule_reeval`]), and report what it
/// issued so the machine can forward cross-unit wakeups.
pub trait EventUnit: SchedulerUnit {
    /// The earliest cycle after `now` at which stepping this unit could
    /// change any state, or `None` when only external events can.
    fn next_activity(&self, now: Cycle) -> Option<Cycle>;

    /// Bulk-accounts `cycles` idle cycles (see [`UnitSim::idle_advance`]).
    fn idle_advance(&mut self, cycles: Cycle);

    /// Injects an external wakeup for instruction `idx` at cycle `at`.
    fn schedule_reeval(&mut self, idx: usize, at: Cycle);

    /// Instructions issued by the most recent step, with completion cycles.
    fn issued_this_step(&self) -> &[(usize, Cycle)];
}

impl SchedulerUnit for UnitSim {
    fn step<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        UnitSim::step(self, now, ctx);
    }

    fn is_done(&self) -> bool {
        UnitSim::is_done(self)
    }

    #[inline]
    fn completion(&self, idx: usize) -> Option<Cycle> {
        UnitSim::completion(self, idx)
    }

    fn max_completion(&self) -> Cycle {
        UnitSim::max_completion(self)
    }

    fn stats(&self) -> &UnitStats {
        UnitSim::stats(self)
    }

    fn oldest_inflight_trace_pos(&self) -> Option<usize> {
        UnitSim::oldest_inflight_trace_pos(self)
    }

    fn youngest_dispatched_trace_pos(&self) -> Option<usize> {
        UnitSim::youngest_dispatched_trace_pos(self)
    }
}

impl EventUnit for UnitSim {
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        UnitSim::next_activity(self, now)
    }

    fn idle_advance(&mut self, cycles: Cycle) {
        UnitSim::idle_advance(self, cycles);
    }

    fn schedule_reeval(&mut self, idx: usize, at: Cycle) {
        UnitSim::schedule_reeval(self, idx, at);
    }

    fn issued_this_step(&self) -> &[(usize, Cycle)] {
        UnitSim::issued_this_step(self)
    }
}

impl SchedulerUnit for NaiveUnitSim {
    fn step<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        NaiveUnitSim::step(self, now, ctx);
    }

    fn is_done(&self) -> bool {
        NaiveUnitSim::is_done(self)
    }

    #[inline]
    fn completion(&self, idx: usize) -> Option<Cycle> {
        NaiveUnitSim::completion(self, idx)
    }

    fn max_completion(&self) -> Cycle {
        NaiveUnitSim::max_completion(self)
    }

    fn stats(&self) -> &UnitStats {
        NaiveUnitSim::stats(self)
    }

    fn oldest_inflight_trace_pos(&self) -> Option<usize> {
        NaiveUnitSim::oldest_inflight_trace_pos(self)
    }

    fn youngest_dispatched_trace_pos(&self) -> Option<usize> {
        NaiveUnitSim::youngest_dispatched_trace_pos(self)
    }
}
