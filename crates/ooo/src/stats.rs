//! Per-unit execution statistics.

use dae_isa::Cycle;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`UnitSim`](crate::UnitSim) while it executes a
/// stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitStats {
    /// Cycles the unit was stepped.
    pub cycles: Cycle,
    /// Instructions dispatched into the window.
    pub dispatched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Window slots released.
    pub retired: u64,
    /// Issue slots available over the run (`cycles * issue_width`).
    pub issue_slots: u64,
    /// Sum of window occupancy sampled once per cycle (after dispatch).
    pub occupancy_sum: u64,
    /// Largest window occupancy observed.
    pub occupancy_max: usize,
    /// Cycles in which dispatch wanted to insert an instruction but the
    /// window was full.
    pub window_full_cycles: u64,
    /// Cycles in which nothing could be issued although the window was not
    /// empty (every resident instruction was waiting on operands or data).
    pub starved_cycles: u64,
}

impl UnitStats {
    /// Instructions issued per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Fraction of issue slots actually used.
    #[must_use]
    pub fn issue_utilization(&self) -> f64 {
        if self.issue_slots == 0 {
            0.0
        } else {
            self.issued as f64 / self.issue_slots as f64
        }
    }

    /// Mean window occupancy over the run.
    #[must_use]
    pub fn avg_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in which the full window blocked dispatch.
    #[must_use]
    pub fn window_pressure(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.window_full_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_zero_cycles() {
        let st = UnitStats::default();
        assert_eq!(st.ipc(), 0.0);
        assert_eq!(st.issue_utilization(), 0.0);
        assert_eq!(st.avg_occupancy(), 0.0);
        assert_eq!(st.window_pressure(), 0.0);
    }

    #[test]
    fn derived_rates_compute_expected_values() {
        let st = UnitStats {
            cycles: 100,
            issued: 250,
            issue_slots: 400,
            occupancy_sum: 1600,
            window_full_cycles: 25,
            ..UnitStats::default()
        };
        assert!((st.ipc() - 2.5).abs() < 1e-12);
        assert!((st.issue_utilization() - 0.625).abs() < 1e-12);
        assert!((st.avg_occupancy() - 16.0).abs() < 1e-12);
        assert!((st.window_pressure() - 0.25).abs() < 1e-12);
    }
}
