//! The out-of-order unit simulator.

use crate::{FuClass, FuPool, RetirePolicy, UnitConfig, UnitStats};
use dae_isa::{Cycle, LatencyModel};
use dae_trace::{Dep, ExecKind, MachineInst};
use std::collections::VecDeque;

/// Machine-specific behaviour the unit delegates to its owner.
///
/// A [`UnitSim`] knows how to dispatch, select and retire; it does *not*
/// know what a load means on the machine it is part of.  The machine models
/// in `dae-machines` implement this trait to supply:
///
/// * the completion times of cross-unit dependences (decoupled machine
///   only), already including the cross-unit transfer latency;
/// * the data-arrival gate for `LoadConsume` instructions (decoupled memory
///   or prefetch buffer); and
/// * the execution of memory instructions themselves.
pub trait ExecContext {
    /// The cycle at which the cross-unit dependence `idx` (an index into the
    /// other unit's stream) is satisfied, including any transfer latency.
    /// `None` if the producer has not been issued yet.
    ///
    /// Units that never see cross dependences (SWSM, scalar) may keep the
    /// default implementation, which panics.
    fn cross_ready_at(&self, idx: usize) -> Option<Cycle> {
        let _ = idx;
        unreachable!("this machine has no cross-unit dependences")
    }

    /// Machine-specific readiness gate evaluated in addition to operand
    /// availability — e.g. "has the decoupled memory received the data for
    /// this tag yet?".  Defaults to always ready.
    fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
        let _ = (inst, now);
        true
    }

    /// Executes a memory-kind instruction (`LoadRequest`, `LoadConsume`,
    /// `LoadBlocking`, `StoreOp`) issued at `now` and returns its completion
    /// cycle, performing any side effects on the memory structures.
    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle;
}

/// A trivial [`ExecContext`] for streams without memory instructions or
/// cross dependences; useful in tests and for purely arithmetic studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMemoryContext;

impl ExecContext for NoMemoryContext {
    fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
        now + 1
    }
}

#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Index into the unit's instruction stream.
    idx: usize,
    issued: bool,
}

/// A cycle-level simulator of one out-of-order unit.
///
/// Per cycle ([`UnitSim::step`]):
///
/// 1. **retire** — release window slots according to the
///    [`RetirePolicy`];
/// 2. **dispatch** — insert the next instructions of the stream, in program
///    order, while slots and dispatch bandwidth remain;
/// 3. **select & issue** — scan the window oldest-first and issue up to
///    `issue_width` ready instructions (operands complete, machine-specific
///    data present, functional unit available).  Arithmetic and copies
///    complete after their fixed latency; memory instructions are delegated
///    to the [`ExecContext`].
///
/// The unit is [`done`](UnitSim::is_done) once the whole stream has been
/// dispatched and every window slot has been released; the final execution
/// time is the maximum completion cycle observed.
///
/// # Example
///
/// ```
/// use dae_isa::{LatencyModel, OpKind};
/// use dae_ooo::{NoMemoryContext, UnitConfig, UnitSim};
/// use dae_trace::{Dep, MachineInst};
///
/// // A chain of three dependent 1-cycle integer operations.
/// let stream = vec![
///     MachineInst::arith(0, OpKind::IntAlu, vec![]),
///     MachineInst::arith(1, OpKind::IntAlu, vec![Dep::Local(0)]),
///     MachineInst::arith(2, OpKind::IntAlu, vec![Dep::Local(1)]),
/// ];
/// let mut unit = UnitSim::new(stream, UnitConfig::new(8, 4), LatencyModel::paper_default());
/// let mut ctx = NoMemoryContext;
/// let mut cycle = 0;
/// while !unit.is_done() {
///     unit.step(cycle, &mut ctx);
///     cycle += 1;
/// }
/// assert_eq!(unit.max_completion(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnitSim {
    stream: Vec<MachineInst>,
    config: UnitConfig,
    latencies: LatencyModel,
    fu: FuPool,
    window: VecDeque<WindowEntry>,
    dispatch_ptr: usize,
    completions: Vec<Option<Cycle>>,
    max_completion: Cycle,
    stats: UnitStats,
}

impl UnitSim {
    /// Creates a unit that will execute `stream` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`UnitConfig::validate`]).
    #[must_use]
    pub fn new(stream: Vec<MachineInst>, config: UnitConfig, latencies: LatencyModel) -> Self {
        config
            .validate()
            .unwrap_or_else(|msg| panic!("invalid unit configuration: {msg}"));
        let len = stream.len();
        UnitSim {
            stream,
            config,
            latencies,
            fu: FuPool::new(config.fu),
            window: VecDeque::new(),
            dispatch_ptr: 0,
            completions: vec![None; len],
            max_completion: 0,
            stats: UnitStats::default(),
        }
    }

    /// The instruction stream being executed.
    #[must_use]
    pub fn stream(&self) -> &[MachineInst] {
        &self.stream
    }

    /// The unit configuration.
    #[must_use]
    pub fn config(&self) -> &UnitConfig {
        &self.config
    }

    /// Returns `true` once the stream has been fully dispatched and every
    /// window slot has been released.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.dispatch_ptr == self.stream.len() && self.window.is_empty()
    }

    /// The completion cycle of stream instruction `idx`, if it has issued.
    #[must_use]
    pub fn completion(&self, idx: usize) -> Option<Cycle> {
        self.completions.get(idx).copied().flatten()
    }

    /// The completion cycles of every instruction (indexed by stream
    /// position).
    #[must_use]
    pub fn completions(&self) -> &[Option<Cycle>] {
        &self.completions
    }

    /// The largest completion cycle observed so far.
    #[must_use]
    pub fn max_completion(&self) -> Cycle {
        self.max_completion
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Total rejected issue attempts due to functional-unit limits.
    #[must_use]
    pub fn fu_rejections(&self) -> u64 {
        self.fu.rejections()
    }

    /// Current window occupancy.
    #[must_use]
    pub fn window_occupancy(&self) -> usize {
        self.window.len()
    }

    /// The architectural trace position of the oldest instruction still
    /// holding a window slot (used for effective-single-window and slippage
    /// measurements).
    #[must_use]
    pub fn oldest_inflight_trace_pos(&self) -> Option<usize> {
        self.window.front().map(|e| self.stream[e.idx].trace_pos)
    }

    /// The architectural trace position of the most recently dispatched
    /// instruction.
    #[must_use]
    pub fn youngest_dispatched_trace_pos(&self) -> Option<usize> {
        if self.dispatch_ptr == 0 {
            None
        } else {
            Some(self.stream[self.dispatch_ptr - 1].trace_pos)
        }
    }

    /// Executes one machine cycle.
    pub fn step<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        self.stats.cycles += 1;
        self.stats.issue_slots += self.config.issue_width as u64;
        self.fu.begin_cycle();

        self.retire(now);
        self.dispatch();
        self.issue(now, ctx);

        self.stats.occupancy_sum += self.window.len() as u64;
        self.stats.occupancy_max = self.stats.occupancy_max.max(self.window.len());
    }

    fn retire(&mut self, now: Cycle) {
        match self.config.retire {
            RetirePolicy::InOrderAtComplete => {
                while let Some(front) = self.window.front() {
                    let done = self.completions[front.idx].is_some_and(|t| t <= now);
                    if done {
                        self.window.pop_front();
                        self.stats.retired += 1;
                    } else {
                        break;
                    }
                }
            }
            RetirePolicy::FreeAtIssue => {
                let before = self.window.len();
                self.window.retain(|e| !e.issued);
                self.stats.retired += (before - self.window.len()) as u64;
            }
        }
    }

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        let dispatch_width = self.config.effective_dispatch_width();
        let mut blocked_by_full_window = false;
        while self.dispatch_ptr < self.stream.len() && dispatched < dispatch_width {
            let has_space = match self.config.window_size {
                Some(cap) => self.window.len() < cap,
                None => true,
            };
            if !has_space {
                blocked_by_full_window = true;
                break;
            }
            self.window.push_back(WindowEntry {
                idx: self.dispatch_ptr,
                issued: false,
            });
            self.dispatch_ptr += 1;
            dispatched += 1;
            self.stats.dispatched += 1;
        }
        if blocked_by_full_window {
            self.stats.window_full_cycles += 1;
        }
    }

    fn issue<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        let mut issued_this_cycle = 0;
        let had_unissued = self.window.iter().any(|e| !e.issued);
        for slot in 0..self.window.len() {
            if issued_this_cycle >= self.config.issue_width {
                break;
            }
            let entry = self.window[slot];
            if entry.issued {
                continue;
            }
            if !self.is_ready(entry.idx, now, ctx) {
                continue;
            }
            let class = FuClass::of(&self.stream[entry.idx]);
            if !self.fu.try_acquire(class) {
                continue;
            }
            let completion = self.execute(entry.idx, now, ctx);
            self.completions[entry.idx] = Some(completion);
            self.max_completion = self.max_completion.max(completion);
            self.window[slot].issued = true;
            issued_this_cycle += 1;
            self.stats.issued += 1;
        }
        if had_unissued && issued_this_cycle == 0 {
            self.stats.starved_cycles += 1;
        }
    }

    fn is_ready<C: ExecContext>(&self, idx: usize, now: Cycle, ctx: &C) -> bool {
        let inst = &self.stream[idx];
        let operands_ready = inst.deps.iter().all(|dep| match *dep {
            Dep::Local(i) => self.completions[i].is_some_and(|t| t <= now),
            Dep::Cross(i) => ctx.cross_ready_at(i).is_some_and(|t| t <= now),
        });
        operands_ready && ctx.data_ready(inst, now)
    }

    fn execute<C: ExecContext>(&mut self, idx: usize, now: Cycle, ctx: &mut C) -> Cycle {
        let inst = &self.stream[idx];
        match inst.kind {
            ExecKind::Arith => now + self.latencies.latency_of(inst.op),
            ExecKind::CopySend => now + 1,
            ExecKind::LoadRequest
            | ExecKind::LoadConsume
            | ExecKind::LoadBlocking
            | ExecKind::StoreOp => ctx.execute_memory(inst, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::OpKind;
    use dae_trace::Dep;

    fn run(unit: &mut UnitSim) -> Cycle {
        let mut ctx = NoMemoryContext;
        run_with(unit, &mut ctx)
    }

    fn run_with<C: ExecContext>(unit: &mut UnitSim, ctx: &mut C) -> Cycle {
        let mut cycle = 0;
        while !unit.is_done() {
            unit.step(cycle, ctx);
            cycle += 1;
            assert!(cycle < 1_000_000, "simulation did not terminate");
        }
        unit.max_completion()
    }

    fn chain(n: usize, op: OpKind) -> Vec<MachineInst> {
        (0..n)
            .map(|i| {
                let deps = if i == 0 { vec![] } else { vec![Dep::Local(i - 1)] };
                MachineInst::arith(i, op, deps)
            })
            .collect()
    }

    fn independent(n: usize, op: OpKind) -> Vec<MachineInst> {
        (0..n).map(|i| MachineInst::arith(i, op, vec![])).collect()
    }

    #[test]
    fn dependent_chain_is_serialised() {
        let mut unit = UnitSim::new(chain(10, OpKind::IntAlu), UnitConfig::new(16, 4), LatencyModel::paper_default());
        assert_eq!(run(&mut unit), 10);
        let mut fp = UnitSim::new(chain(10, OpKind::FpAdd), UnitConfig::new(16, 4), LatencyModel::paper_default());
        assert_eq!(run(&mut fp), 20);
    }

    #[test]
    fn independent_work_is_limited_by_issue_width() {
        let mut unit = UnitSim::new(
            independent(40, OpKind::IntAlu),
            UnitConfig::new(64, 4),
            LatencyModel::paper_default(),
        );
        // 40 independent 1-cycle ops at width 4: 10 issue cycles.
        assert_eq!(run(&mut unit), 10);
        assert!((unit.stats().ipc() - 40.0 / unit.stats().cycles as f64).abs() < 1e-9);
    }

    #[test]
    fn window_size_one_behaves_like_a_scalar_machine() {
        let mut unit = UnitSim::new(
            independent(10, OpKind::FpMul),
            UnitConfig::new(1, 4),
            LatencyModel::paper_default(),
        );
        // Each multiply occupies the single slot until it completes (2 cycles).
        assert_eq!(run(&mut unit), 20);
    }

    #[test]
    fn unlimited_window_matches_dataflow_limit() {
        let mut insts = independent(30, OpKind::IntAlu);
        // Add a final instruction depending on the last independent one.
        insts.push(MachineInst::arith(30, OpKind::FpAdd, vec![Dep::Local(29)]));
        let mut unit = UnitSim::new(
            insts,
            UnitConfig {
                issue_width: 64,
                ..UnitConfig::unlimited_window(64)
            },
            LatencyModel::paper_default(),
        );
        // All 30 int ops issue in cycle 0, fp add issues at cycle 1, done at 3.
        assert_eq!(run(&mut unit), 3);
    }

    #[test]
    fn in_order_retirement_blocks_dispatch_behind_a_slow_op() {
        // One slow divide followed by many independent 1-cycle ops, window 2:
        // the divide occupies the front slot, so only one op can be resident
        // with it at a time.
        let mut insts = vec![MachineInst::arith(0, OpKind::FpDiv, vec![])];
        insts.extend((1..9).map(|i| MachineInst::arith(i, OpKind::IntAlu, vec![])));
        let in_order = UnitSim::new(
            insts.clone(),
            UnitConfig::new(2, 4),
            LatencyModel::paper_default(),
        );
        let free = UnitSim::new(
            insts,
            UnitConfig {
                retire: RetirePolicy::FreeAtIssue,
                ..UnitConfig::new(2, 4)
            },
            LatencyModel::paper_default(),
        );
        let mut in_order = in_order;
        let mut free = free;
        let t_in_order = run(&mut in_order);
        let t_free = run(&mut free);
        assert!(
            t_free < t_in_order,
            "free-at-issue ({t_free}) should beat in-order retirement ({t_in_order})"
        );
    }

    #[test]
    fn fu_limits_throttle_issue() {
        let cfg = UnitConfig {
            fu: crate::FuConfig::restricted(1, 1, 1),
            ..UnitConfig::new(64, 8)
        };
        let mut unit = UnitSim::new(independent(20, OpKind::IntAlu), cfg, LatencyModel::paper_default());
        // One integer unit: one op per cycle.
        assert_eq!(run(&mut unit), 20);
        assert!(unit.fu_rejections() > 0);
    }

    #[test]
    fn memory_instructions_are_delegated_to_the_context() {
        struct FixedMd(Cycle);
        impl ExecContext for FixedMd {
            fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
                match inst.kind {
                    ExecKind::LoadBlocking => now + 1 + self.0,
                    _ => now + 1,
                }
            }
        }
        let insts = vec![
            MachineInst::memory(0, OpKind::Load, ExecKind::LoadBlocking, vec![], 0, Some(0)),
            MachineInst::arith(1, OpKind::FpAdd, vec![Dep::Local(0)]),
        ];
        let mut unit = UnitSim::new(insts, UnitConfig::new(8, 2), LatencyModel::paper_default());
        let mut ctx = FixedMd(60);
        assert_eq!(run_with(&mut unit, &mut ctx), 63);
    }

    #[test]
    fn data_ready_gate_delays_issue() {
        struct GateAt(Cycle);
        impl ExecContext for GateAt {
            fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
                inst.kind != ExecKind::LoadConsume || now >= self.0
            }
            fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
                now + 1
            }
        }
        let insts = vec![MachineInst::memory(
            0,
            OpKind::Load,
            ExecKind::LoadConsume,
            vec![],
            0,
            Some(0),
        )];
        let mut unit = UnitSim::new(insts, UnitConfig::new(4, 2), LatencyModel::paper_default());
        let mut ctx = GateAt(25);
        assert_eq!(run_with(&mut unit, &mut ctx), 26);
        assert!(unit.stats().starved_cycles >= 24);
    }

    #[test]
    fn stats_track_dispatch_issue_retire_counts() {
        let mut unit = UnitSim::new(
            independent(25, OpKind::IntAlu),
            UnitConfig::new(8, 4),
            LatencyModel::paper_default(),
        );
        run(&mut unit);
        let st = unit.stats();
        assert_eq!(st.dispatched, 25);
        assert_eq!(st.issued, 25);
        assert_eq!(st.retired, 25);
        assert!(st.occupancy_max <= 8);
        assert!(st.issue_utilization() <= 1.0);
    }

    #[test]
    fn trace_position_probes_track_window_contents() {
        let insts = vec![
            MachineInst::arith(10, OpKind::FpDiv, vec![]),
            MachineInst::arith(11, OpKind::IntAlu, vec![]),
            MachineInst::arith(12, OpKind::IntAlu, vec![]),
        ];
        let mut unit = UnitSim::new(insts, UnitConfig::new(4, 4), LatencyModel::paper_default());
        let mut ctx = NoMemoryContext;
        unit.step(0, &mut ctx);
        assert_eq!(unit.oldest_inflight_trace_pos(), Some(10));
        assert_eq!(unit.youngest_dispatched_trace_pos(), Some(12));
        assert!(!unit.is_done());
    }

    #[test]
    #[should_panic(expected = "invalid unit configuration")]
    fn invalid_configuration_panics() {
        let _ = UnitSim::new(vec![], UnitConfig::new(8, 0), LatencyModel::paper_default());
    }

    #[test]
    fn empty_stream_is_immediately_done() {
        let unit = UnitSim::new(vec![], UnitConfig::new(8, 4), LatencyModel::paper_default());
        assert!(unit.is_done());
        assert_eq!(unit.max_completion(), 0);
        assert_eq!(unit.oldest_inflight_trace_pos(), None);
        assert_eq!(unit.youngest_dispatched_trace_pos(), None);
    }
}
