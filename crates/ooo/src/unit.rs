//! The out-of-order unit simulator (event-driven scheduling core).
//!
//! This is the performance-critical engine of the whole reproduction: every
//! table and figure is built from thousands of full-trace simulations.  The
//! scheduler is therefore *event driven* rather than cycle-scanned:
//!
//! * each instruction carries a **remaining-operand counter** over its
//!   local [`Dep`](dae_trace::Dep) edges;
//! * when an instruction issues, a completion event is queued; when it
//!   fires, only the consumers recorded in a precomputed
//!   [`WakeupList`](dae_trace::WakeupList) are woken — never the whole
//!   window;
//! * instructions whose operands are all available sit in an explicit
//!   **ready set** — a bitset keyed by stream index, which *is* window age —
//!   so the oldest-first select is a find-first-set scan over exactly the
//!   issuable instructions;
//! * instructions blocked on machine state (cross-unit dependences, memory
//!   arrivals) park until an event re-evaluates them: either a self wake at
//!   a time the [`ExecContext`] can name ([`GateWait::At`]), or an external
//!   wake injected by the machine model via [`UnitSim::schedule_reeval`].
//!
//! The result is O(instructions × dependences) scheduling work instead of
//! the naive O(cycles × window × dependences) — see
//! [`NaiveUnitSim`](crate::NaiveUnitSim) for the retained reference
//! implementation, and `tests/scheduler_differential.rs` for the proof of
//! cycle-exact equivalence.
//!
//! ## Time-skipping support
//!
//! A machine run loop does not have to tick the unit every cycle: after a
//! step, [`UnitSim::next_activity`] names the earliest future cycle at
//! which stepping this unit could change any state, and
//! [`UnitSim::idle_advance`] bulk-accounts the skipped idle cycles so every
//! per-cycle statistic (occupancy integral, starvation, window pressure)
//! remains bit-for-bit identical to stepping through the stall one cycle at
//! a time.  `next_activity` is allowed to be conservative (too early is
//! merely slower) but never late — the invariant the differential tests
//! enforce.

use crate::calendar::{EventRing, ReadySet, NIL as NIL_EVENT};
use crate::{FuClass, FuPool, RetirePolicy, UnitConfig, UnitStats};
use dae_isa::{Cycle, LatencyModel};
use dae_trace::{ExecKind, MachineInst, WakeupList};
use std::sync::{Arc, Weak};

/// How long a machine-specific readiness gate will stay closed.
///
/// Returned by [`ExecContext::gate_wait`]; the scheduler uses it to decide
/// when to look at a gated instruction again without polling it every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateWait {
    /// The gate is open: the instruction may issue now (equivalent to
    /// [`ExecContext::data_ready`] returning `true`).
    Open,
    /// The gate opens at the given cycle under current knowledge (e.g. the
    /// arrival time of an in-flight memory transaction).  The scheduler
    /// re-evaluates then; if the time moved (a re-prefetch), it simply waits
    /// again.
    At(Cycle),
    /// No opening time can be named (e.g. waiting for another instruction
    /// to release buffer capacity).  The scheduler re-checks the gate every
    /// cycle, exactly like the naive reference.
    Poll,
}

/// Machine-specific behaviour the unit delegates to its owner.
///
/// A [`UnitSim`] knows how to dispatch, select and retire; it does *not*
/// know what a load means on the machine it is part of.  The machine models
/// in `dae-machines` implement this trait to supply:
///
/// * the completion times of cross-unit dependences (decoupled machine
///   only), already including the cross-unit transfer latency;
/// * the data-arrival gate for `LoadConsume` instructions (decoupled memory
///   or prefetch buffer), plus — for the event-driven scheduler — *when*
///   a closed gate will open ([`ExecContext::gate_wait`]); and
/// * the execution of memory instructions themselves.
pub trait ExecContext {
    /// The cycle at which the cross-unit dependence `idx` (an index into the
    /// other unit's stream) is satisfied, including any transfer latency.
    /// `None` if the producer has not been issued yet.
    ///
    /// Contract: once this returns `Some(t)`, later calls must keep
    /// returning the same `t` (completion times are immutable) — the
    /// scheduler relies on satisfied dependences *staying* satisfied.
    ///
    /// Units that never see cross dependences (SWSM, scalar) may keep the
    /// default implementation, which panics.
    fn cross_ready_at(&self, idx: usize) -> Option<Cycle> {
        let _ = idx;
        unreachable!("this machine has no cross-unit dependences")
    }

    /// Machine-specific readiness gate evaluated in addition to operand
    /// availability — e.g. "has the decoupled memory received the data for
    /// this tag yet?".  Defaults to always ready.
    fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
        let _ = (inst, now);
        true
    }

    /// When the [`ExecContext::data_ready`] gate for `inst` opens.
    ///
    /// The default derives a conservative answer from `data_ready`: open
    /// gates report [`GateWait::Open`], closed gates report
    /// [`GateWait::Poll`] (per-cycle re-checks, the naive behaviour).
    /// Machines that know the arrival time of the blocking transaction
    /// override this with [`GateWait::At`] so the scheduler can sleep until
    /// then.
    ///
    /// Contract: the gate must not open *earlier* than reported — `Open`
    /// must agree with `data_ready(inst, now)`, and `At(t)` requires the
    /// gate to stay closed strictly before `t` under current machine state
    /// (later state changes may postpone, but never advance, the opening).
    fn gate_wait(&self, inst: &MachineInst, now: Cycle) -> GateWait {
        if self.data_ready(inst, now) {
            GateWait::Open
        } else {
            GateWait::Poll
        }
    }

    /// Executes a memory-kind instruction (`LoadRequest`, `LoadConsume`,
    /// `LoadBlocking`, `StoreOp`) issued at `now` and returns its completion
    /// cycle, performing any side effects on the memory structures.
    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle;
}

/// A trivial [`ExecContext`] for streams without memory instructions or
/// cross dependences; useful in tests and for purely arithmetic studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMemoryContext;

impl ExecContext for NoMemoryContext {
    fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
        now + 1
    }
}

/// Scheduling state of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    /// Not yet dispatched into the window.
    Pending,
    /// Dispatched; waiting for local operands (remaining counter > 0).
    Waiting,
    /// Local operands available; blocked on a cross dependence or a data
    /// gate, waiting for an event (self-scheduled, machine-injected, or a
    /// per-cycle poll) to re-evaluate it.
    Parked,
    /// In the ready queue, eligible for selection.
    Ready,
    /// Issued to a functional unit; may still hold its window slot.
    Issued,
    /// Window slot released.
    Retired,
}

const NONE: u32 = u32::MAX;

/// The reusable per-run buffers of a [`UnitSim`] — everything the simulator
/// allocates per construction (window links, ready bitset, event ring,
/// completion and state arrays, poll and scratch lists), detached from any
/// particular stream.
///
/// Constructing a unit is ~5% of a short decoupled-machine run, and sweeps
/// construct units per (window, memory-differential) point; recycling the
/// buffers through [`UnitSim::into_scratch`] /
/// [`UnitSim::with_wakeups_scratch`] makes every construction after the
/// first allocation-free (buffers are cleared and re-sized, keeping their
/// capacity — including the event ring's grown bucket array and node pool).
/// A scratch is not tied to a stream, configuration or machine: the same
/// one may serve a DM unit, then an SWSM unit, then a scalar unit of
/// different lengths.  `dae-machines` keeps a per-thread pool of these for
/// the parallel sweep drivers.
#[derive(Debug)]
pub struct UnitScratch {
    remaining_local: Vec<u32>,
    state: Vec<InstState>,
    win_prev: Vec<u32>,
    win_next: Vec<u32>,
    pending_free: Vec<usize>,
    ready: ReadySet,
    poll_list: Vec<usize>,
    in_poll: Vec<bool>,
    poll_scan: Vec<usize>,
    events: EventRing,
    issued_now: Vec<(usize, Cycle)>,
    completions: Vec<Cycle>,
    /// Pristine remaining-operand counters for [`UnitScratch::template_of`]
    /// — when consecutive runs execute the *same* shared stream (a sweep
    /// varying only machine parameters), the per-instruction dependence
    /// walk is replaced by one memcpy.
    remaining_template: Vec<u32>,
    /// Identity of the stream `remaining_template` was computed from.  A
    /// `Weak` rather than a raw pointer: if the stream has been dropped,
    /// the upgrade fails and the template is recomputed — a recycled
    /// allocation at the same address can never alias a stale template.
    template_of: Weak<Vec<MachineInst>>,
}

impl Default for UnitScratch {
    fn default() -> Self {
        UnitScratch {
            remaining_local: Vec::new(),
            state: Vec::new(),
            win_prev: Vec::new(),
            win_next: Vec::new(),
            pending_free: Vec::new(),
            ready: ReadySet::new(0),
            poll_list: Vec::new(),
            in_poll: Vec::new(),
            poll_scan: Vec::new(),
            events: EventRing::new(),
            issued_now: Vec::new(),
            completions: Vec::new(),
            remaining_template: Vec::new(),
            template_of: Weak::new(),
        }
    }
}

/// Sentinel for "not yet completed" in the packed completion array.  It
/// compares greater than every reachable cycle, so readiness checks reduce
/// to one comparison (the deadlock safety bounds trip long before any real
/// completion could approach it).
const PENDING: Cycle = Cycle::MAX;

/// A cycle-level simulator of one out-of-order unit (event-driven; see the
/// module docs).
///
/// Per cycle ([`UnitSim::step`]):
///
/// 1. **events** — fire due completion wakeups and re-evaluations;
/// 2. **retire** — release window slots according to the [`RetirePolicy`];
/// 3. **dispatch** — insert the next instructions of the stream, in program
///    order, while slots and dispatch bandwidth remain;
/// 4. **select & issue** — pop the ready queue oldest-first and issue up to
///    `issue_width` instructions (re-verifying readiness and functional
///    unit availability exactly as the naive scheduler would).
///
/// The unit is [`done`](UnitSim::is_done) once the whole stream has been
/// dispatched and every window slot has been released; the final execution
/// time is the maximum completion cycle observed.
///
/// # Example
///
/// ```
/// use dae_isa::{LatencyModel, OpKind};
/// use dae_ooo::{NoMemoryContext, UnitConfig, UnitSim};
/// use dae_trace::{Dep, MachineInst};
///
/// // A chain of three dependent 1-cycle integer operations.
/// let stream = vec![
///     MachineInst::arith(0, OpKind::IntAlu, vec![]),
///     MachineInst::arith(1, OpKind::IntAlu, vec![Dep::local(0)]),
///     MachineInst::arith(2, OpKind::IntAlu, vec![Dep::local(1)]),
/// ];
/// let mut unit = UnitSim::new(stream, UnitConfig::new(8, 4), LatencyModel::paper_default());
/// let mut ctx = NoMemoryContext;
/// let mut cycle = 0;
/// while !unit.is_done() {
///     unit.step(cycle, &mut ctx);
///     cycle += 1;
/// }
/// assert_eq!(unit.max_completion(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnitSim {
    stream: Arc<Vec<MachineInst>>,
    config: UnitConfig,
    latencies: LatencyModel,
    fu: FuPool,
    /// Producer → same-stream consumers, built once per stream and shared
    /// across runs.
    wakeups: Arc<WakeupList>,
    /// Unsatisfied local-dependence edges per instruction.
    remaining_local: Vec<u32>,
    state: Vec<InstState>,
    /// Intrusive doubly-linked window list over stream indices (`u32`
    /// links: streams are bounded well below `u32::MAX` and the two arrays
    /// are re-initialised on every run, so width is memory traffic).
    win_prev: Vec<u32>,
    win_next: Vec<u32>,
    win_head: u32,
    win_tail: u32,
    window_len: usize,
    unissued_in_window: usize,
    /// Issued instructions whose slot frees at the next retire
    /// (`FreeAtIssue` only).
    pending_free: Vec<usize>,
    /// Ready set: bitset over stream index = window age.
    ready: ReadySet,
    /// Parked instructions whose gate can only be polled.
    poll_list: Vec<usize>,
    /// Membership flags for `poll_list` (prevents duplicate entries).
    in_poll: Vec<bool>,
    /// Scratch: sorted poll candidates for the current issue scan.
    poll_scan: Vec<usize>,
    /// Pending completion / re-evaluation events in a calendar queue.
    events: EventRing,
    /// Instructions issued during the current/most recent step, with their
    /// completion cycles — drained by machine models to forward cross-unit
    /// wakeups.
    issued_now: Vec<(usize, Cycle)>,
    dispatch_ptr: usize,
    /// Completion cycle per instruction, [`PENDING`] until issued (packed —
    /// half the footprint of `Option<Cycle>`, and operand checks become a
    /// single comparison).
    completions: Vec<Cycle>,
    max_completion: Cycle,
    stats: UnitStats,
    /// Diagnostic: how many times `step` actually ran (as opposed to cycles
    /// bulk-accounted by `idle_advance`).  Not part of [`UnitStats`] so the
    /// naive/event-driven equality over stats is unaffected.
    steps: u64,
    /// Carried through from [`UnitScratch`] (never touched by the run) so
    /// [`UnitSim::into_scratch`] can hand the template cache back.
    remaining_template: Vec<u32>,
    template_of: Weak<Vec<MachineInst>>,
}

impl UnitSim {
    /// Creates a unit that will execute `stream` under `config`.
    ///
    /// The local wakeup lists are built here, once per stream — the only
    /// O(instructions × dependences) pass outside the simulation itself.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`UnitConfig::validate`]).
    #[must_use]
    pub fn new(
        stream: impl Into<Arc<Vec<MachineInst>>>,
        config: UnitConfig,
        latencies: LatencyModel,
    ) -> Self {
        let stream = stream.into();
        let wakeups = Arc::new(WakeupList::local(&stream));
        Self::with_wakeups(stream, wakeups, config, latencies)
    }

    /// Creates a unit from a stream whose wakeup lists were already built
    /// (e.g. by the trace lowerings, which attach them to their program
    /// structures so sweeps can reuse them across runs).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `wakeups` does not cover
    /// the stream.
    #[must_use]
    pub fn with_wakeups(
        stream: Arc<Vec<MachineInst>>,
        wakeups: Arc<WakeupList>,
        config: UnitConfig,
        latencies: LatencyModel,
    ) -> Self {
        Self::with_wakeups_scratch(stream, wakeups, config, latencies, UnitScratch::default())
    }

    /// [`UnitSim::with_wakeups`], recycling the buffers of a previous run.
    ///
    /// Every per-run structure is cleared and re-sized for the new stream
    /// but keeps its allocation, so constructing a unit from a warm
    /// [`UnitScratch`] performs no allocation at all (until a structure
    /// outgrows its recycled capacity).  The scratch may come from a unit
    /// of any stream, configuration or machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `wakeups` does not cover
    /// the stream.
    #[must_use]
    pub fn with_wakeups_scratch(
        stream: Arc<Vec<MachineInst>>,
        wakeups: Arc<WakeupList>,
        config: UnitConfig,
        latencies: LatencyModel,
        scratch: UnitScratch,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|msg| panic!("invalid unit configuration: {msg}"));
        let len = stream.len();
        assert!(u32::try_from(len).is_ok(), "stream too long");
        assert_eq!(
            wakeups.producers(),
            len,
            "wakeup list does not match stream"
        );
        let UnitScratch {
            mut remaining_local,
            mut state,
            mut win_prev,
            mut win_next,
            mut pending_free,
            mut ready,
            mut poll_list,
            mut in_poll,
            mut poll_scan,
            mut events,
            mut issued_now,
            mut completions,
            mut remaining_template,
            mut template_of,
        } = scratch;
        // Same shared stream as the previous run of this scratch (the
        // common shape of a sweep): the counters are a memcpy of the cached
        // template.  Otherwise walk the dependence lists once and cache.
        let same_stream = template_of
            .upgrade()
            .is_some_and(|cached| Arc::ptr_eq(&cached, &stream));
        remaining_local.clear();
        if same_stream {
            remaining_local.extend_from_slice(&remaining_template);
        } else {
            remaining_local.extend(stream.iter().map(|inst| {
                u32::try_from(inst.deps.iter().filter(|d| !d.is_cross()).count())
                    .expect("too many dependences")
            }));
            remaining_template.clear();
            remaining_template.extend_from_slice(&remaining_local);
            template_of = Arc::downgrade(&stream);
        }
        state.clear();
        state.resize(len, InstState::Pending);
        // The window links and poll-membership flags are restored to their
        // pristine state by a *completed* run (every dispatched instruction
        // is unlinked at retirement, every poll entry is pruned once it
        // issues) and [`UnitSim::into_scratch`] scrubs the rare abandoned
        // unit, so only the length needs adjusting here.
        debug_assert!(win_prev.iter().all(|&link| link == NONE));
        debug_assert!(win_next.iter().all(|&link| link == NONE));
        debug_assert!(in_poll.iter().all(|&flag| !flag));
        win_prev.resize(len, NONE);
        win_next.resize(len, NONE);
        in_poll.resize(len, false);
        pending_free.clear();
        ready.reset(len);
        poll_list.clear();
        poll_scan.clear();
        events.reset();
        issued_now.clear();
        completions.clear();
        completions.resize(len, PENDING);
        UnitSim {
            stream,
            config,
            latencies,
            fu: FuPool::new(config.fu),
            wakeups,
            remaining_local,
            state,
            win_prev,
            win_next,
            win_head: NONE,
            win_tail: NONE,
            window_len: 0,
            unissued_in_window: 0,
            pending_free,
            ready,
            poll_list,
            in_poll,
            poll_scan,
            events,
            issued_now,
            dispatch_ptr: 0,
            completions,
            max_completion: 0,
            stats: UnitStats::default(),
            steps: 0,
            remaining_template,
            template_of,
        }
    }

    /// Consumes the unit and returns its buffers for reuse by a later
    /// [`UnitSim::with_wakeups_scratch`] construction (the stream, wakeup
    /// list and counters are dropped; the allocations survive).
    #[must_use]
    pub fn into_scratch(mut self) -> UnitScratch {
        if !self.is_done() {
            // An abandoned mid-run unit leaves window links and poll flags
            // set; scrub them so the pristine-state invariant the pooled
            // constructor relies on holds unconditionally.  (Completed
            // runs — the only shape the machines produce — skip this.)
            self.win_prev.fill(NONE);
            self.win_next.fill(NONE);
            self.in_poll.fill(false);
        }
        UnitScratch {
            remaining_local: self.remaining_local,
            state: self.state,
            win_prev: self.win_prev,
            win_next: self.win_next,
            pending_free: self.pending_free,
            ready: self.ready,
            poll_list: self.poll_list,
            in_poll: self.in_poll,
            poll_scan: self.poll_scan,
            events: self.events,
            issued_now: self.issued_now,
            completions: self.completions,
            remaining_template: self.remaining_template,
            template_of: self.template_of,
        }
    }

    /// Diagnostic: the number of executed [`UnitSim::step`] calls — the
    /// cycles *not* covered by [`UnitSim::idle_advance`].  The ratio of
    /// steps to [`UnitStats::cycles`] measures how well time-skipping works
    /// on a given workload.
    #[must_use]
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// The instruction stream being executed.
    #[must_use]
    pub fn stream(&self) -> &[MachineInst] {
        &self.stream
    }

    /// The unit configuration.
    #[must_use]
    pub fn config(&self) -> &UnitConfig {
        &self.config
    }

    /// Returns `true` once the stream has been fully dispatched and every
    /// window slot has been released.
    #[must_use]
    #[inline]
    pub fn is_done(&self) -> bool {
        self.dispatch_ptr == self.stream.len() && self.window_len == 0
    }

    /// The completion cycle of stream instruction `idx`, if it has issued.
    #[must_use]
    #[inline]
    pub fn completion(&self, idx: usize) -> Option<Cycle> {
        self.completions.get(idx).copied().filter(|&t| t != PENDING)
    }

    /// The largest completion cycle observed so far.
    #[must_use]
    #[inline]
    pub fn max_completion(&self) -> Cycle {
        self.max_completion
    }

    /// Counters accumulated so far.
    #[must_use]
    #[inline]
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Total rejected issue attempts due to functional-unit limits.
    #[must_use]
    pub fn fu_rejections(&self) -> u64 {
        self.fu.rejections()
    }

    /// Current window occupancy.
    #[must_use]
    pub fn window_occupancy(&self) -> usize {
        self.window_len
    }

    /// The architectural trace position of the oldest instruction still
    /// holding a window slot (used for effective-single-window and slippage
    /// measurements).
    #[must_use]
    #[inline]
    pub fn oldest_inflight_trace_pos(&self) -> Option<usize> {
        (self.win_head != NONE).then(|| self.stream[self.win_head as usize].trace_pos)
    }

    /// The architectural trace position of the most recently dispatched
    /// instruction.
    #[must_use]
    #[inline]
    pub fn youngest_dispatched_trace_pos(&self) -> Option<usize> {
        if self.dispatch_ptr == 0 {
            None
        } else {
            Some(self.stream[self.dispatch_ptr - 1].trace_pos)
        }
    }

    /// The instructions issued by the most recent [`UnitSim::step`], with
    /// their completion cycles.  Machine models read this after stepping a
    /// unit to forward cross-unit wakeups to the other unit.
    #[must_use]
    #[inline]
    pub fn issued_this_step(&self) -> &[(usize, Cycle)] {
        &self.issued_now
    }

    /// Injects an external wakeup: instruction `idx` is re-evaluated at the
    /// first step whose cycle is `>= at`.  Used by machine models when an
    /// event outside this unit (a cross-unit producer issuing, a memory
    /// transaction being requested) may unblock a parked instruction.
    ///
    /// Spurious wakeups are harmless — re-evaluation of a still-blocked or
    /// already-issued instruction is a no-op.
    #[inline]
    pub fn schedule_reeval(&mut self, idx: usize, at: Cycle) {
        self.events.push_reeval(at, idx as u32);
    }

    /// The earliest cycle after `now` at which stepping this unit could
    /// change any state (issue, dispatch, retire, counter or readiness
    /// transition), or `None` when the unit is finished.
    ///
    /// The bound is conservative: it may name a cycle where nothing happens
    /// (costing an extra step, never correctness), but it never skips a
    /// cycle where the naive scheduler would have acted.
    #[must_use]
    #[inline]
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.is_done() {
            return None;
        }
        // Anything already actionable pins the horizon to the very next
        // cycle — no probe can name anything earlier, so the busy case
        // (dispatchable stream, ready or polled or freeable instructions)
        // returns without touching the retire head or the event queue.
        let can_dispatch = self.dispatch_ptr < self.stream.len()
            && match self.config.window_size {
                Some(cap) => self.window_len < cap,
                None => true,
            };
        if can_dispatch
            || !self.ready.is_empty()
            || !self.poll_list.is_empty()
            || !self.pending_free.is_empty()
        {
            return Some(now + 1);
        }
        let mut t = Cycle::MAX;
        if self.config.retire == RetirePolicy::InOrderAtComplete && self.win_head != NONE {
            let done_at = self.completions[self.win_head as usize];
            if done_at != PENDING {
                t = done_at.max(now + 1);
            }
        }
        if let Some(at) = self.events.next_cycle() {
            t = t.min(at.max(now + 1));
        }
        (t != Cycle::MAX).then_some(t)
    }

    /// Bulk-accounts `cycles` idle cycles during which the machine proved
    /// (via [`UnitSim::next_activity`]) that stepping would change nothing.
    /// Every per-cycle statistic advances exactly as `cycles` naive steps
    /// would have advanced it.
    #[inline]
    pub fn idle_advance(&mut self, cycles: Cycle) {
        if cycles == 0 {
            return;
        }
        self.stats.cycles += cycles;
        self.stats.issue_slots += cycles * self.config.issue_width as u64;
        self.stats.occupancy_sum += cycles * self.window_len as u64;
        if self.unissued_in_window > 0 {
            self.stats.starved_cycles += cycles;
        }
        if self.dispatch_ptr < self.stream.len()
            && self
                .config
                .window_size
                .is_some_and(|cap| self.window_len >= cap)
        {
            self.stats.window_full_cycles += cycles;
        }
    }

    /// Executes one machine cycle.
    pub fn step<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        self.steps += 1;
        self.stats.cycles += 1;
        self.stats.issue_slots += self.config.issue_width as u64;
        self.fu.begin_cycle();
        self.issued_now.clear();

        self.process_events(now, ctx);
        self.retire(now);
        self.dispatch(now, ctx);
        self.issue(now, ctx);

        self.stats.occupancy_sum += self.window_len as u64;
        self.stats.occupancy_max = self.stats.occupancy_max.max(self.window_len);
    }

    fn process_events<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        while let Some(at) = self.events.next_cycle() {
            if at > now {
                break;
            }
            // All completions of a cycle fire before its re-evaluations, so
            // a woken instruction sees the decremented counters.  (Anything
            // these handlers queue lands at `now + 1` or later, never back
            // into the cycle being drained — the detached chains are safe
            // to walk while handlers push.)
            let (mut complete, mut reeval) = self.events.take_at(at);
            // Cheap pointer clone so the consumer walk does not re-borrow
            // `self` (the list itself is immutable and shared).
            let wakeups = Arc::clone(&self.wakeups);
            while complete != NIL_EVENT {
                let (next, idx) = self.events.chain_next(complete);
                complete = next;
                // `idx` completed at `at`: wake its local consumers.
                for &consumer in wakeups.of(idx as usize) {
                    let consumer = consumer as usize;
                    self.remaining_local[consumer] -= 1;
                    if self.remaining_local[consumer] == 0
                        && self.state[consumer] == InstState::Waiting
                    {
                        self.evaluate(consumer, now, ctx);
                    }
                }
            }
            while reeval != NIL_EVENT {
                let (next, idx) = self.events.chain_next(reeval);
                reeval = next;
                let idx = idx as usize;
                if self.state[idx] == InstState::Parked {
                    self.evaluate(idx, now, ctx);
                }
            }
        }
        self.events.advance_base(now + 1);
    }

    /// Decides what a dispatched instruction with all local operands
    /// available is waiting for, and files it accordingly: the ready queue,
    /// a timed self-wakeup, the poll list, or (for cross dependences whose
    /// producer has not issued) nothing — the machine model is responsible
    /// for injecting a wakeup when that producer issues.
    fn evaluate<C: ExecContext>(&mut self, idx: usize, now: Cycle, ctx: &C) {
        debug_assert_eq!(self.remaining_local[idx], 0);
        // Cross-unit dependences first: all must be satisfied before the
        // data gate can matter (and, for consumes, before the gate's opening
        // time is knowable).
        let mut wake_at: Cycle = 0;
        let mut unknown = false;
        for dep in &self.stream[idx].deps {
            if dep.is_cross() {
                match ctx.cross_ready_at(dep.index()) {
                    Some(t) if t <= now => {}
                    Some(t) => wake_at = wake_at.max(t),
                    None => unknown = true,
                }
            }
        }
        if unknown {
            // Await the machine-injected wakeup for the unissued producer.
            self.state[idx] = InstState::Parked;
            return;
        }
        if wake_at > now {
            self.state[idx] = InstState::Parked;
            self.events.push_reeval(wake_at, idx as u32);
            return;
        }
        match ctx.gate_wait(&self.stream[idx], now) {
            GateWait::Open => {
                self.state[idx] = InstState::Ready;
                self.ready.insert(idx);
            }
            GateWait::At(t) => {
                self.state[idx] = InstState::Parked;
                self.events.push_reeval(t.max(now + 1), idx as u32);
            }
            GateWait::Poll => {
                self.state[idx] = InstState::Parked;
                if !self.in_poll[idx] {
                    self.in_poll[idx] = true;
                    self.poll_list.push(idx);
                }
            }
        }
    }

    fn retire(&mut self, now: Cycle) {
        match self.config.retire {
            RetirePolicy::InOrderAtComplete => {
                // `PENDING` compares greater than `now`, so one comparison
                // covers both "not issued" and "still executing".
                while self.win_head != NONE && self.completions[self.win_head as usize] <= now {
                    let head = self.win_head as usize;
                    self.unlink(head);
                    self.state[head] = InstState::Retired;
                    self.stats.retired += 1;
                }
            }
            RetirePolicy::FreeAtIssue => {
                // Slots of instructions issued in earlier cycles free now —
                // an O(issued) unlink instead of the naive full-window
                // `retain` scan.
                for i in 0..self.pending_free.len() {
                    let idx = self.pending_free[i];
                    self.unlink(idx);
                    self.state[idx] = InstState::Retired;
                    self.stats.retired += 1;
                }
                self.pending_free.clear();
            }
        }
    }

    fn unlink(&mut self, idx: usize) {
        let prev = self.win_prev[idx];
        let next = self.win_next[idx];
        if prev == NONE {
            self.win_head = next;
        } else {
            self.win_next[prev as usize] = next;
        }
        if next == NONE {
            self.win_tail = prev;
        } else {
            self.win_prev[next as usize] = prev;
        }
        self.win_prev[idx] = NONE;
        self.win_next[idx] = NONE;
        self.window_len -= 1;
    }

    fn dispatch<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        let mut dispatched = 0;
        let dispatch_width = self.config.effective_dispatch_width();
        let mut blocked_by_full_window = false;
        while self.dispatch_ptr < self.stream.len() && dispatched < dispatch_width {
            let has_space = match self.config.window_size {
                Some(cap) => self.window_len < cap,
                None => true,
            };
            if !has_space {
                blocked_by_full_window = true;
                break;
            }
            let idx = self.dispatch_ptr;
            self.dispatch_ptr += 1;
            dispatched += 1;
            self.stats.dispatched += 1;
            // Link at the window tail.
            if self.win_tail == NONE {
                self.win_head = idx as u32;
            } else {
                self.win_next[self.win_tail as usize] = idx as u32;
                self.win_prev[idx] = self.win_tail;
            }
            self.win_tail = idx as u32;
            self.window_len += 1;
            self.unissued_in_window += 1;
            if self.remaining_local[idx] == 0 {
                self.evaluate(idx, now, ctx);
            } else {
                self.state[idx] = InstState::Waiting;
            }
        }
        if blocked_by_full_window {
            self.stats.window_full_cycles += 1;
        }
    }

    fn issue<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        let mut issued_this_cycle = 0;
        let had_unissued = self.unissued_in_window > 0;

        // Poll-gated candidates join the scan at their window position, so
        // a gate opened by an *earlier issue of the same cycle* (a consume
        // freeing decoupled-memory capacity, a prefetch evicting a buffer
        // entry) is observed exactly where the naive window scan would
        // observe it.
        self.poll_scan.clear();
        if !self.poll_list.is_empty() {
            for i in 0..self.poll_list.len() {
                let idx = self.poll_list[i];
                if self.state[idx] == InstState::Parked {
                    self.poll_scan.push(idx);
                }
            }
            self.poll_scan.sort_unstable();
        }
        let mut poll_cursor = 0;
        // Next stream index the ready-set scan considers.  A candidate
        // rejected by the functional units simply stays in the set while the
        // cursor moves past it (the heap needed a pop/re-push stash here).
        let mut ready_cursor = 0;

        while issued_this_cycle < self.config.issue_width {
            let ready_top = self.ready.peek_ge(ready_cursor);
            let poll_top = self.poll_scan.get(poll_cursor).copied();
            let (idx, from_poll) = match (ready_top, poll_top) {
                (Some(r), Some(p)) if p < r => (p, true),
                (Some(r), _) => (r, false),
                (None, Some(p)) => (p, true),
                (None, None) => break,
            };
            if from_poll {
                poll_cursor += 1;
                if self.state[idx] != InstState::Parked {
                    continue;
                }
                // Evaluated mid-scan with the naive predicate; a still
                // closed gate leaves the instruction parked for the next
                // cycle's poll.
                if !self.is_ready(idx, now, ctx) {
                    continue;
                }
                if !self.fu.try_acquire(FuClass::of(&self.stream[idx])) {
                    // Rejection counted, exactly like the naive scan; the
                    // instruction stays parked and polls again next cycle.
                    continue;
                }
                self.complete_issue(idx, now, ctx);
                issued_this_cycle += 1;
            } else {
                ready_cursor = idx + 1;
                debug_assert_eq!(self.state[idx], InstState::Ready);
                // Re-verify only the data gate: operand satisfaction is
                // monotone (completion times are immutable once set, see
                // the `cross_ready_at` contract), but a gate may have
                // regressed since this instruction was filed as ready
                // (e.g. a re-prefetch pushed an arrival time back).
                debug_assert!(
                    self.is_ready(idx, now, ctx) == ctx.data_ready(&self.stream[idx], now)
                );
                if !ctx.data_ready(&self.stream[idx], now) {
                    self.ready.remove(idx);
                    self.state[idx] = InstState::Parked;
                    self.events.push_reeval(now + 1, idx as u32);
                    continue;
                }
                if !self.fu.try_acquire(FuClass::of(&self.stream[idx])) {
                    // Rejected this cycle; stays ready (and counted, exactly
                    // as the naive scan counts one rejection per ready
                    // candidate).
                    continue;
                }
                self.ready.remove(idx);
                self.complete_issue(idx, now, ctx);
                issued_this_cycle += 1;
            }
        }
        if had_unissued && issued_this_cycle == 0 {
            self.stats.starved_cycles += 1;
        }
        // Prune poll entries that issued (or otherwise moved on) this cycle.
        if !self.poll_list.is_empty() {
            let mut list = std::mem::take(&mut self.poll_list);
            list.retain(|&idx| {
                if self.state[idx] == InstState::Parked {
                    true
                } else {
                    self.in_poll[idx] = false;
                    false
                }
            });
            self.poll_list = list;
        }
    }

    fn complete_issue<C: ExecContext>(&mut self, idx: usize, now: Cycle, ctx: &mut C) {
        let completion = self.execute(idx, now, ctx);
        self.completions[idx] = completion;
        self.max_completion = self.max_completion.max(completion);
        self.state[idx] = InstState::Issued;
        self.unissued_in_window -= 1;
        if !self.wakeups.of(idx).is_empty() {
            self.events.push_complete(completion, idx as u32);
        }
        if self.config.retire == RetirePolicy::FreeAtIssue {
            self.pending_free.push(idx);
        }
        self.issued_now.push((idx, completion));
        self.stats.issued += 1;
    }

    fn is_ready<C: ExecContext>(&self, idx: usize, now: Cycle, ctx: &C) -> bool {
        let inst = &self.stream[idx];
        let operands_ready = inst.deps.iter().all(|dep| {
            if dep.is_cross() {
                ctx.cross_ready_at(dep.index()).is_some_and(|t| t <= now)
            } else {
                self.completions[dep.index()] <= now
            }
        });
        operands_ready && ctx.data_ready(inst, now)
    }

    fn execute<C: ExecContext>(&mut self, idx: usize, now: Cycle, ctx: &mut C) -> Cycle {
        let inst = &self.stream[idx];
        match inst.kind {
            ExecKind::Arith => now + self.latencies.latency_of(inst.op),
            ExecKind::CopySend => now + 1,
            ExecKind::LoadRequest
            | ExecKind::LoadConsume
            | ExecKind::LoadBlocking
            | ExecKind::StoreOp => ctx.execute_memory(inst, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_isa::OpKind;
    use dae_trace::Dep;

    fn run(unit: &mut UnitSim) -> Cycle {
        let mut ctx = NoMemoryContext;
        run_with(unit, &mut ctx)
    }

    fn run_with<C: ExecContext>(unit: &mut UnitSim, ctx: &mut C) -> Cycle {
        let mut cycle = 0;
        while !unit.is_done() {
            unit.step(cycle, ctx);
            cycle += 1;
            assert!(cycle < 1_000_000, "simulation did not terminate");
        }
        unit.max_completion()
    }

    fn chain(n: usize, op: OpKind) -> Vec<MachineInst> {
        (0..n)
            .map(|i| {
                let deps = if i == 0 {
                    vec![]
                } else {
                    vec![Dep::local(i - 1)]
                };
                MachineInst::arith(i, op, deps)
            })
            .collect()
    }

    fn independent(n: usize, op: OpKind) -> Vec<MachineInst> {
        (0..n).map(|i| MachineInst::arith(i, op, vec![])).collect()
    }

    #[test]
    fn dependent_chain_is_serialised() {
        let mut unit = UnitSim::new(
            chain(10, OpKind::IntAlu),
            UnitConfig::new(16, 4),
            LatencyModel::paper_default(),
        );
        assert_eq!(run(&mut unit), 10);
        let mut fp = UnitSim::new(
            chain(10, OpKind::FpAdd),
            UnitConfig::new(16, 4),
            LatencyModel::paper_default(),
        );
        assert_eq!(run(&mut fp), 20);
    }

    #[test]
    fn independent_work_is_limited_by_issue_width() {
        let mut unit = UnitSim::new(
            independent(40, OpKind::IntAlu),
            UnitConfig::new(64, 4),
            LatencyModel::paper_default(),
        );
        // 40 independent 1-cycle ops at width 4: 10 issue cycles.
        assert_eq!(run(&mut unit), 10);
        assert!((unit.stats().ipc() - 40.0 / unit.stats().cycles as f64).abs() < 1e-9);
    }

    #[test]
    fn window_size_one_behaves_like_a_scalar_machine() {
        let mut unit = UnitSim::new(
            independent(10, OpKind::FpMul),
            UnitConfig::new(1, 4),
            LatencyModel::paper_default(),
        );
        // Each multiply occupies the single slot until it completes (2 cycles).
        assert_eq!(run(&mut unit), 20);
    }

    #[test]
    fn unlimited_window_matches_dataflow_limit() {
        let mut insts = independent(30, OpKind::IntAlu);
        // Add a final instruction depending on the last independent one.
        insts.push(MachineInst::arith(30, OpKind::FpAdd, vec![Dep::local(29)]));
        let mut unit = UnitSim::new(
            insts,
            UnitConfig {
                issue_width: 64,
                ..UnitConfig::unlimited_window(64)
            },
            LatencyModel::paper_default(),
        );
        // All 30 int ops issue in cycle 0, fp add issues at cycle 1, done at 3.
        assert_eq!(run(&mut unit), 3);
    }

    #[test]
    fn in_order_retirement_blocks_dispatch_behind_a_slow_op() {
        // One slow divide followed by many independent 1-cycle ops, window 2:
        // the divide occupies the front slot, so only one op can be resident
        // with it at a time.
        let mut insts = vec![MachineInst::arith(0, OpKind::FpDiv, vec![])];
        insts.extend((1..9).map(|i| MachineInst::arith(i, OpKind::IntAlu, vec![])));
        let in_order = UnitSim::new(
            insts.clone(),
            UnitConfig::new(2, 4),
            LatencyModel::paper_default(),
        );
        let free = UnitSim::new(
            insts,
            UnitConfig {
                retire: RetirePolicy::FreeAtIssue,
                ..UnitConfig::new(2, 4)
            },
            LatencyModel::paper_default(),
        );
        let mut in_order = in_order;
        let mut free = free;
        let t_in_order = run(&mut in_order);
        let t_free = run(&mut free);
        assert!(
            t_free < t_in_order,
            "free-at-issue ({t_free}) should beat in-order retirement ({t_in_order})"
        );
    }

    #[test]
    fn fu_limits_throttle_issue() {
        let cfg = UnitConfig {
            fu: crate::FuConfig::restricted(1, 1, 1),
            ..UnitConfig::new(64, 8)
        };
        let mut unit = UnitSim::new(
            independent(20, OpKind::IntAlu),
            cfg,
            LatencyModel::paper_default(),
        );
        // One integer unit: one op per cycle.
        assert_eq!(run(&mut unit), 20);
        assert!(unit.fu_rejections() > 0);
    }

    #[test]
    fn memory_instructions_are_delegated_to_the_context() {
        struct FixedMd(Cycle);
        impl ExecContext for FixedMd {
            fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
                match inst.kind {
                    ExecKind::LoadBlocking => now + 1 + self.0,
                    _ => now + 1,
                }
            }
        }
        let insts = vec![
            MachineInst::memory(0, OpKind::Load, ExecKind::LoadBlocking, vec![], 0, Some(0)),
            MachineInst::arith(1, OpKind::FpAdd, vec![Dep::local(0)]),
        ];
        let mut unit = UnitSim::new(insts, UnitConfig::new(8, 2), LatencyModel::paper_default());
        let mut ctx = FixedMd(60);
        assert_eq!(run_with(&mut unit, &mut ctx), 63);
    }

    #[test]
    fn data_ready_gate_delays_issue() {
        struct GateAt(Cycle);
        impl ExecContext for GateAt {
            fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
                inst.kind != ExecKind::LoadConsume || now >= self.0
            }
            fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
                now + 1
            }
        }
        let insts = vec![MachineInst::memory(
            0,
            OpKind::Load,
            ExecKind::LoadConsume,
            vec![],
            0,
            Some(0),
        )];
        let mut unit = UnitSim::new(insts, UnitConfig::new(4, 2), LatencyModel::paper_default());
        let mut ctx = GateAt(25);
        assert_eq!(run_with(&mut unit, &mut ctx), 26);
        assert!(unit.stats().starved_cycles >= 24);
    }

    #[test]
    fn timed_gate_wait_skips_polling_but_matches_poll_semantics() {
        // Same gate as above, but the context names the opening cycle: the
        // scheduler parks the consume on a timed wakeup instead of polling.
        struct GateKnown(Cycle);
        impl ExecContext for GateKnown {
            fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
                inst.kind != ExecKind::LoadConsume || now >= self.0
            }
            fn gate_wait(&self, inst: &MachineInst, now: Cycle) -> GateWait {
                if self.data_ready(inst, now) {
                    GateWait::Open
                } else {
                    GateWait::At(self.0)
                }
            }
            fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
                now + 1
            }
        }
        let insts = vec![MachineInst::memory(
            0,
            OpKind::Load,
            ExecKind::LoadConsume,
            vec![],
            0,
            Some(0),
        )];
        let mut unit = UnitSim::new(
            insts.clone(),
            UnitConfig::new(4, 2),
            LatencyModel::paper_default(),
        );
        let mut ctx = GateKnown(25);
        assert_eq!(run_with(&mut unit, &mut ctx), 26);

        // And the unit can sleep through the stall: after the first step the
        // next activity is the gate opening, not the next cycle.
        let mut unit = UnitSim::new(insts, UnitConfig::new(4, 2), LatencyModel::paper_default());
        let mut ctx = GateKnown(25);
        unit.step(0, &mut ctx);
        assert_eq!(unit.next_activity(0), Some(25));
        unit.idle_advance(24);
        unit.step(25, &mut ctx);
        unit.step(26, &mut ctx);
        assert!(unit.is_done());
        assert_eq!(unit.max_completion(), 26);
        assert_eq!(unit.stats().cycles, 27, "idle cycles are accounted");
    }

    #[test]
    fn external_reevals_wake_parked_cross_dependences() {
        struct CrossCtx {
            ready_at: Option<Cycle>,
        }
        impl ExecContext for CrossCtx {
            fn cross_ready_at(&self, _idx: usize) -> Option<Cycle> {
                self.ready_at
            }
            fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
                now + 1
            }
        }
        let insts = vec![MachineInst::arith(0, OpKind::IntAlu, vec![Dep::cross(7)])];
        let mut unit = UnitSim::new(insts, UnitConfig::new(4, 2), LatencyModel::paper_default());
        let mut ctx = CrossCtx { ready_at: None };
        unit.step(0, &mut ctx);
        assert!(!unit.is_done());
        // Parked with no known wake: only dispatch-side activity remains —
        // and there is none, so the unit reports no local activity.
        assert_eq!(unit.next_activity(0), None);
        // The "machine" learns the producer issued, completing at 9 (+1
        // transfer) and injects the wakeup.
        ctx.ready_at = Some(10);
        unit.schedule_reeval(0, 10);
        assert_eq!(unit.next_activity(0), Some(10));
        unit.idle_advance(9);
        unit.step(10, &mut ctx);
        assert_eq!(unit.max_completion(), 11, "woken instruction issues at 10");
        unit.step(11, &mut ctx);
        assert!(unit.is_done(), "slot frees once the completion retires");
    }

    #[test]
    fn stats_track_dispatch_issue_retire_counts() {
        let mut unit = UnitSim::new(
            independent(25, OpKind::IntAlu),
            UnitConfig::new(8, 4),
            LatencyModel::paper_default(),
        );
        run(&mut unit);
        let st = unit.stats();
        assert_eq!(st.dispatched, 25);
        assert_eq!(st.issued, 25);
        assert_eq!(st.retired, 25);
        assert!(st.occupancy_max <= 8);
        assert!(st.issue_utilization() <= 1.0);
    }

    #[test]
    fn trace_position_probes_track_window_contents() {
        let insts = vec![
            MachineInst::arith(10, OpKind::FpDiv, vec![]),
            MachineInst::arith(11, OpKind::IntAlu, vec![]),
            MachineInst::arith(12, OpKind::IntAlu, vec![]),
        ];
        let mut unit = UnitSim::new(insts, UnitConfig::new(4, 4), LatencyModel::paper_default());
        let mut ctx = NoMemoryContext;
        unit.step(0, &mut ctx);
        assert_eq!(unit.oldest_inflight_trace_pos(), Some(10));
        assert_eq!(unit.youngest_dispatched_trace_pos(), Some(12));
        assert!(!unit.is_done());
    }

    #[test]
    #[should_panic(expected = "invalid unit configuration")]
    fn invalid_configuration_panics() {
        let _ = UnitSim::new(vec![], UnitConfig::new(8, 0), LatencyModel::paper_default());
    }

    #[test]
    fn empty_stream_is_immediately_done() {
        let unit = UnitSim::new(vec![], UnitConfig::new(8, 4), LatencyModel::paper_default());
        assert!(unit.is_done());
        assert_eq!(unit.max_completion(), 0);
        assert_eq!(unit.oldest_inflight_trace_pos(), None);
        assert_eq!(unit.youngest_dispatched_trace_pos(), None);
        assert_eq!(unit.next_activity(0), None);
    }
}
