//! Functional-unit pools and per-cycle issue-port accounting.

use crate::FuConfig;
use dae_isa::OpKind;
use dae_trace::{ExecKind, MachineInst};
use serde::{Deserialize, Serialize};

/// The three resource classes distinguished by the functional-unit model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer / address ALUs (also used for cross-unit copies).
    Int,
    /// Floating point units.
    Fp,
    /// Memory ports (requests, consumes, blocking loads and stores).
    Mem,
}

impl FuClass {
    /// The resource class an instruction occupies when it issues.
    #[must_use]
    pub fn of(inst: &MachineInst) -> FuClass {
        match inst.kind {
            ExecKind::Arith => match inst.op {
                OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => FuClass::Fp,
                _ => FuClass::Int,
            },
            ExecKind::CopySend => FuClass::Int,
            ExecKind::LoadRequest
            | ExecKind::LoadConsume
            | ExecKind::LoadBlocking
            | ExecKind::StoreOp => FuClass::Mem,
        }
    }
}

/// Tracks functional-unit availability within a single cycle.
///
/// The paper's idealised machines have unlimited functional units; the pool
/// therefore defaults to "always available" and only starts rejecting issues
/// when limits are configured (the restricted-issue ablation).
///
/// # Example
///
/// ```
/// use dae_ooo::{FuConfig, FuPool, FuClass};
///
/// let mut pool = FuPool::new(FuConfig::restricted(1, 1, 1));
/// pool.begin_cycle();
/// assert!(pool.try_acquire(FuClass::Int));
/// assert!(!pool.try_acquire(FuClass::Int), "only one integer unit");
/// pool.begin_cycle();
/// assert!(pool.try_acquire(FuClass::Int), "units free up next cycle");
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    config: FuConfig,
    /// No class is limited — the paper's default — so acquisition always
    /// succeeds and no per-cycle counters need maintaining.
    unlimited: bool,
    used_int: usize,
    used_fp: usize,
    used_mem: usize,
    /// How many issues were rejected because a unit class was exhausted.
    rejections: u64,
}

impl FuPool {
    /// Creates a pool with the given limits.
    #[must_use]
    pub fn new(config: FuConfig) -> Self {
        FuPool {
            config,
            unlimited: config.int_units.is_none()
                && config.fp_units.is_none()
                && config.mem_ports.is_none(),
            used_int: 0,
            used_fp: 0,
            used_mem: 0,
            rejections: 0,
        }
    }

    /// Resets per-cycle usage; call once at the start of every cycle.
    #[inline]
    pub fn begin_cycle(&mut self) {
        if self.unlimited {
            return;
        }
        self.used_int = 0;
        self.used_fp = 0;
        self.used_mem = 0;
    }

    /// Attempts to acquire a unit of the given class for this cycle.
    #[inline]
    pub fn try_acquire(&mut self, class: FuClass) -> bool {
        if self.unlimited {
            return true;
        }
        let (used, limit) = match class {
            FuClass::Int => (&mut self.used_int, self.config.int_units),
            FuClass::Fp => (&mut self.used_fp, self.config.fp_units),
            FuClass::Mem => (&mut self.used_mem, self.config.mem_ports),
        };
        match limit {
            Some(cap) if *used >= cap => {
                self.rejections += 1;
                false
            }
            _ => {
                *used += 1;
                true
            }
        }
    }

    /// Total issue attempts rejected due to exhausted functional units.
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_trace::Dep;

    #[test]
    fn class_of_each_instruction_kind() {
        let int = MachineInst::arith(0, OpKind::IntAlu, vec![]);
        let fp = MachineInst::arith(0, OpKind::FpMul, vec![]);
        let copy = MachineInst::copy(0, vec![Dep::local(0)]);
        let req = MachineInst::memory(0, OpKind::Load, ExecKind::LoadRequest, vec![], 0, None);
        let consume = MachineInst::memory(0, OpKind::Load, ExecKind::LoadConsume, vec![], 0, None);
        let store = MachineInst::memory(0, OpKind::Store, ExecKind::StoreOp, vec![], 0, None);
        assert_eq!(FuClass::of(&int), FuClass::Int);
        assert_eq!(FuClass::of(&fp), FuClass::Fp);
        assert_eq!(FuClass::of(&copy), FuClass::Int);
        assert_eq!(FuClass::of(&req), FuClass::Mem);
        assert_eq!(FuClass::of(&consume), FuClass::Mem);
        assert_eq!(FuClass::of(&store), FuClass::Mem);
    }

    #[test]
    fn unlimited_pool_never_rejects() {
        let mut pool = FuPool::new(FuConfig::unlimited());
        pool.begin_cycle();
        for _ in 0..1000 {
            assert!(pool.try_acquire(FuClass::Mem));
            assert!(pool.try_acquire(FuClass::Fp));
            assert!(pool.try_acquire(FuClass::Int));
        }
        assert_eq!(pool.rejections(), 0);
    }

    #[test]
    fn limits_apply_per_class_and_per_cycle() {
        let mut pool = FuPool::new(FuConfig::restricted(2, 1, 3));
        pool.begin_cycle();
        assert!(pool.try_acquire(FuClass::Int));
        assert!(pool.try_acquire(FuClass::Int));
        assert!(!pool.try_acquire(FuClass::Int));
        assert!(pool.try_acquire(FuClass::Fp));
        assert!(!pool.try_acquire(FuClass::Fp));
        for _ in 0..3 {
            assert!(pool.try_acquire(FuClass::Mem));
        }
        assert!(!pool.try_acquire(FuClass::Mem));
        assert_eq!(pool.rejections(), 3);

        pool.begin_cycle();
        assert!(pool.try_acquire(FuClass::Int));
        assert!(pool.try_acquire(FuClass::Fp));
        assert!(pool.try_acquire(FuClass::Mem));
    }
}
