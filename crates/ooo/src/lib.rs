//! # dae-ooo — out-of-order unit building blocks
//!
//! The two machines of the paper (the access decoupled machine and the
//! single-window superscalar) are both built out of the same ingredient: an
//! idealised out-of-order unit with an instruction window, oldest-first
//! selection and a configurable issue width.  This crate provides that
//! ingredient:
//!
//! * [`UnitConfig`] / [`RetirePolicy`] / [`FuConfig`] — the knobs the paper
//!   sweeps (window size, issue width) and the ones it idealises away
//!   (functional-unit counts, retirement policy), kept explicit so the
//!   ablation experiments can un-idealise them;
//! * [`UnitSim`] — the cycle-level simulator of one unit, which delegates
//!   machine-specific behaviour (decoupled memory, prefetch buffer, blocking
//!   loads) to an [`ExecContext`] implemented by `dae-machines`;
//! * [`FuPool`] / [`FuClass`] — per-cycle functional-unit accounting;
//! * [`UnitStats`] — occupancy, utilisation and stall counters;
//! * [`IssueLogicModel`] — the Palacharla-style quadratic issue-logic delay
//!   model backing the paper's "simpler window logic" argument.
//!
//! ## Example
//!
//! ```
//! use dae_isa::{LatencyModel, OpKind};
//! use dae_ooo::{NoMemoryContext, UnitConfig, UnitSim};
//! use dae_trace::MachineInst;
//!
//! // Sixteen independent floating point multiplies on a 4-wide unit.
//! let stream: Vec<_> = (0..16)
//!     .map(|i| MachineInst::arith(i, OpKind::FpMul, vec![]))
//!     .collect();
//! let mut unit = UnitSim::new(stream, UnitConfig::new(32, 4), LatencyModel::paper_default());
//! let mut cycle = 0;
//! while !unit.is_done() {
//!     unit.step(cycle, &mut NoMemoryContext);
//!     cycle += 1;
//! }
//! // Four per cycle, two-cycle latency: the last completes at cycle 5.
//! assert_eq!(unit.max_completion(), 5);
//! ```

mod calendar;
mod complexity;
mod config;
mod drive;
mod fu;
mod reference;
mod stats;
mod unit;

pub use complexity::IssueLogicModel;
pub use config::{FuConfig, RetirePolicy, UnitConfig};
pub use drive::{EventUnit, SchedulerUnit};
pub use fu::{FuClass, FuPool};
pub use reference::NaiveUnitSim;
pub use stats::UnitStats;
pub use unit::{ExecContext, GateWait, NoMemoryContext, UnitScratch, UnitSim};
