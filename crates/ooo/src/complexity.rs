//! An analytical model of issue-logic delay (after Palacharla, Jouppi and
//! Smith, ISCA 1997).
//!
//! The paper's second conclusion is architectural rather than performance
//! oriented: because "delays in the issue logic vary quadratically with
//! window and issue width size", a decoupled machine that achieves the same
//! performance with two *small* windows needs simpler (faster) window logic
//! than a single-window superscalar that needs a 2–4x larger window.  This
//! module provides the parametric delay model used by the complexity
//! ablation to turn the measured equivalent-window ratios into delay ratios.

use serde::{Deserialize, Serialize};

/// A quadratic model of the critical wakeup + selection delay of an issue
/// window.
///
/// `delay(W, IW) = c0 + c1 * (W * IW) + c2 * (W * IW)^2`
///
/// The default coefficients are chosen so that a 32-entry, 4-wide window has
/// a delay of roughly 1.0 (arbitrary units); only *ratios* between
/// configurations are ever used by the experiments, which is all the paper's
/// argument needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IssueLogicModel {
    /// Constant term (decode / drive overhead).
    pub c_fixed: f64,
    /// Coefficient of the linear term in `window * issue_width`.
    pub c_linear: f64,
    /// Coefficient of the quadratic term in `window * issue_width`.
    pub c_quadratic: f64,
}

impl Default for IssueLogicModel {
    fn default() -> Self {
        // Normalised so delay(32, 4) ~= 1.0 with a visible quadratic share.
        IssueLogicModel {
            c_fixed: 0.2,
            c_linear: 0.004,
            c_quadratic: 0.000_018,
        }
    }
}

impl IssueLogicModel {
    /// The issue-logic delay (arbitrary units) of a single window of
    /// `window_size` entries issuing `issue_width` instructions per cycle.
    #[must_use]
    pub fn delay(&self, window_size: usize, issue_width: usize) -> f64 {
        let x = (window_size * issue_width) as f64;
        self.c_fixed + self.c_linear * x + self.c_quadratic * x * x
    }

    /// The issue-logic delay of a decoupled machine whose AU and DU windows
    /// operate independently: the slower of the two sets the clock.
    #[must_use]
    pub fn decoupled_delay(
        &self,
        au_window: usize,
        au_issue: usize,
        du_window: usize,
        du_issue: usize,
    ) -> f64 {
        self.delay(au_window, au_issue)
            .max(self.delay(du_window, du_issue))
    }

    /// The ratio of a single-window machine's delay to a decoupled
    /// machine's delay (values above 1.0 mean the single window is slower).
    #[must_use]
    pub fn relative_delay(
        &self,
        swsm_window: usize,
        swsm_issue: usize,
        au_window: usize,
        au_issue: usize,
        du_window: usize,
        du_issue: usize,
    ) -> f64 {
        self.delay(swsm_window, swsm_issue)
            / self.decoupled_delay(au_window, au_issue, du_window, du_issue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_superlinearly_with_window_size() {
        let m = IssueLogicModel::default();
        let d32 = m.delay(32, 4);
        let d64 = m.delay(64, 4);
        let d128 = m.delay(128, 4);
        assert!(d64 > d32);
        assert!(d128 > d64);
        // Quadratic component: doubling the window more than doubles the
        // *increase* in delay.
        assert!((d128 - d64) > (d64 - d32));
    }

    #[test]
    fn delay_grows_with_issue_width() {
        let m = IssueLogicModel::default();
        assert!(m.delay(32, 9) > m.delay(32, 4));
    }

    #[test]
    fn default_is_normalised_near_one_for_a_32x4_window() {
        let m = IssueLogicModel::default();
        let d = m.delay(32, 4);
        assert!(d > 0.5 && d < 1.5, "delay(32,4) = {d}");
    }

    #[test]
    fn decoupled_delay_is_the_max_of_the_two_units() {
        let m = IssueLogicModel::default();
        let dm = m.decoupled_delay(32, 4, 32, 5);
        assert!((dm - m.delay(32, 5)).abs() < 1e-12);
    }

    #[test]
    fn bigger_equivalent_windows_mean_bigger_relative_delay() {
        let m = IssueLogicModel::default();
        // The paper's headline case: DM with two 32-entry windows vs an SWSM
        // needing a 2-4x larger window at the full issue width of 9.
        let r2 = m.relative_delay(64, 9, 32, 4, 32, 5);
        let r4 = m.relative_delay(128, 9, 32, 4, 32, 5);
        assert!(r2 > 1.0, "a 2x window at width 9 is already slower: {r2}");
        assert!(r4 > r2);
    }
}
