//! The calendar (ring) event queue and the bitset ready structure backing
//! the event-driven scheduler.
//!
//! Both replace binary heaps.  The scheduler's events are *short horizon* —
//! a completion lands at most one operation latency ahead, a memory arrival
//! at most one memory differential ahead — so a power-of-two ring of
//! per-cycle buckets with an occupancy bitmap gives O(1) push and pop where
//! a heap pays O(log n) comparisons and pointer-chasing churn on every
//! operation.  Bucket membership is an intrusive singly-linked list through
//! a node pool (no per-bucket allocation, nodes recycled through a free
//! list), and the earliest pending cycle is cached so the common peek —
//! `next_activity` asking "when is the next event?" — is a field read; the
//! occupancy bitmap is only scanned after pops invalidate the cache.
//!
//! The ready "queue" is a plain bitset over stream indices: window age *is*
//! the stream index, so oldest-first selection is a find-first-set scan,
//! insertion is a bit set, and — unlike a heap — functional-unit-rejected
//! instructions simply stay put with no re-push.
//!
//! Neither structure is public API; [`UnitSim`](crate::UnitSim) is the only
//! user.

use dae_isa::Cycle;
use std::cell::Cell;

/// Initial bucket count; covers every event horizon the paper's parameter
/// grids produce (memory differential ≤ 80 plus small latencies).  The ring
/// grows (rarely) if an event is pushed further ahead than the current size.
const INITIAL_BUCKETS: usize = 256;

/// Chain terminator for the bucket lists handed out by
/// [`EventRing::take_at`].
pub(crate) const NIL: u32 = u32::MAX;

/// One pooled list node: a stream index waiting in some bucket.
#[derive(Debug, Clone, Copy)]
struct Node {
    next: u32,
    idx: u32,
}

/// A calendar queue over future cycles: bucket `c & mask` holds the events
/// of cycle `c`, an occupancy bitmap names the non-empty buckets, and the
/// invariant `base ≤ cycle < base + size` for every pending event
/// (maintained by growing on demand) makes bucket position ↔ cycle
/// unambiguous.  Completions are kept apart from re-evaluations because all
/// completions of a cycle must fire first: a woken instruction must observe
/// the decremented operand counters (the heap encoded the same rule in its
/// sort key).
/// The two list heads of one bucket (completions and re-evaluations of one
/// cycle), adjacent so a drain touches one cache line per bucket.
#[derive(Debug, Clone, Copy)]
struct Head {
    complete: u32,
    reeval: u32,
}

const EMPTY_HEAD: Head = Head {
    complete: NIL,
    reeval: NIL,
};

#[derive(Debug, Clone)]
pub(crate) struct EventRing {
    /// Per-bucket list heads (`NIL` if none).
    heads: Vec<Head>,
    /// Bit `b` set ⇔ bucket `b` non-empty.
    occupancy: Vec<u64>,
    nodes: Vec<Node>,
    free: u32,
    mask: usize,
    /// Every pending event's cycle is `≥ base`; the next drain starts here.
    base: Cycle,
    len: usize,
    /// The earliest pending cycle, valid while `fresh` (pushes keep it
    /// fresh; a pop that empties a bucket invalidates it).  Interior
    /// mutability because the cache refills inside `&self` peeks.
    cached_next: Cell<Cycle>,
    fresh: Cell<bool>,
}

impl EventRing {
    pub(crate) fn new() -> Self {
        EventRing {
            heads: vec![EMPTY_HEAD; INITIAL_BUCKETS],
            occupancy: vec![0; INITIAL_BUCKETS / 64],
            nodes: Vec::new(),
            free: NIL,
            mask: INITIAL_BUCKETS - 1,
            base: 0,
            len: 0,
            cached_next: Cell::new(0),
            fresh: Cell::new(false),
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the ring to its initial (empty, cycle-zero) state while
    /// keeping every allocation — the bucket array (at whatever size it has
    /// grown to), the occupancy bitmap and the node pool — so a pooled
    /// [`UnitSim`](crate::UnitSim) pays no event-queue allocation on reuse.
    pub(crate) fn reset(&mut self) {
        if self.len != 0 {
            // Stale future events (e.g. spurious cross wakeups for
            // instructions that issued early) survive a finished run; only
            // then do the buckets need sweeping — a fully drained ring has
            // already cleared every head and occupancy bit through
            // `take_at`.
            self.heads.fill(EMPTY_HEAD);
            self.occupancy.fill(0);
            self.len = 0;
        } else {
            debug_assert!(self
                .heads
                .iter()
                .all(|h| h.complete == NIL && h.reeval == NIL));
            debug_assert!(self.occupancy.iter().all(|&w| w == 0));
        }
        self.nodes.clear();
        self.free = NIL;
        self.base = 0;
        self.fresh.set(false);
    }

    /// Queues a completion wakeup for stream index `idx` at cycle `at`.
    #[inline]
    pub(crate) fn push_complete(&mut self, at: Cycle, idx: u32) {
        let (slot, at) = self.slot_for(at);
        let node = self.alloc(self.heads[slot].complete, idx);
        self.heads[slot].complete = node;
        self.mark(slot, at);
    }

    /// Queues a re-evaluation for stream index `idx` at cycle `at`.
    #[inline]
    pub(crate) fn push_reeval(&mut self, at: Cycle, idx: u32) {
        let (slot, at) = self.slot_for(at);
        let node = self.alloc(self.heads[slot].reeval, idx);
        self.heads[slot].reeval = node;
        self.mark(slot, at);
    }

    /// The earliest cycle holding pending events.  A field read while the
    /// cache is fresh; otherwise one occupancy-bitmap scan.
    #[inline]
    pub(crate) fn next_cycle(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        if self.fresh.get() {
            return Some(self.cached_next.get());
        }
        let size = self.heads.len();
        let start = (self.base as usize) & self.mask;
        // Scan the occupancy bitmap word by word from `start`, wrapping
        // once; the position invariant (every pending cycle lies in
        // `[base, base + size)`) turns a found slot's distance from `start`
        // back into an absolute cycle.  Slots covered twice near the wrap
        // point are provably empty the second time, so the first hit is the
        // earliest event.
        let mut offset = 0;
        while offset < size {
            let slot = (start + offset) & self.mask;
            let within = slot & 63;
            let bits = self.occupancy[slot >> 6] & (!0u64 << within);
            if bits != 0 {
                let found = (slot & !63) + bits.trailing_zeros() as usize;
                let dist = found.wrapping_sub(start) & self.mask;
                self.cached_next.set(self.base + dist as Cycle);
                self.fresh.set(true);
                return Some(self.cached_next.get());
            }
            // Jump to the next word boundary.
            offset += 64 - within;
        }
        unreachable!("occupancy bitmap inconsistent with event count")
    }

    /// Detaches and returns the whole bucket of cycle `at` — the completion
    /// and re-evaluation chain heads — clearing the bucket in one touch.
    /// Walk the chains with [`EventRing::chain_next`].
    #[inline]
    pub(crate) fn take_at(&mut self, at: Cycle) -> (u32, u32) {
        let slot = (at as usize) & self.mask;
        let head = self.heads[slot];
        if head.complete != NIL || head.reeval != NIL {
            self.heads[slot] = EMPTY_HEAD;
            self.occupancy[slot >> 6] &= !(1u64 << (slot & 63));
            // The drained bucket was (almost always) the cached earliest;
            // recompute lazily on the next peek.
            self.fresh.set(false);
        }
        (head.complete, head.reeval)
    }

    /// Consumes one node of a detached chain: returns its successor and
    /// stream index, recycling the node.  (The node is free the moment this
    /// returns, so event handlers running between calls may reuse it — the
    /// rest of the detached chain stays untouched.)
    #[inline]
    pub(crate) fn chain_next(&mut self, node: u32) -> (u32, u32) {
        let Node { next, idx } = self.nodes[node as usize];
        self.nodes[node as usize].next = self.free;
        self.free = node;
        self.len -= 1;
        (next, idx)
    }

    /// Advances the drain point: the caller has fired every event strictly
    /// before `to`.  Never moves backwards.
    #[inline]
    pub(crate) fn advance_base(&mut self, to: Cycle) {
        debug_assert!(!self.fresh.get() || self.cached_next.get() >= to || self.len == 0);
        self.base = self.base.max(to);
    }

    #[inline]
    fn alloc(&mut self, next: u32, idx: u32) -> u32 {
        if self.free == NIL {
            self.nodes.push(Node { next, idx });
            (self.nodes.len() - 1) as u32
        } else {
            let node = self.free;
            self.free = self.nodes[node as usize].next;
            self.nodes[node as usize] = Node { next, idx };
            node
        }
    }

    #[inline]
    fn slot_for(&mut self, at: Cycle) -> (usize, Cycle) {
        // Events are always scheduled at or after the drain point (the
        // scheduler only ever names future cycles); clamp defensively so a
        // stale external wakeup fires at the next step instead of aliasing
        // a future bucket.
        let at = at.max(self.base);
        let dist = (at - self.base) as usize;
        if dist >= self.heads.len() {
            self.grow(dist + 1);
        }
        ((at as usize) & self.mask, at)
    }

    #[inline]
    fn mark(&mut self, slot: usize, at: Cycle) {
        self.occupancy[slot >> 6] |= 1u64 << (slot & 63);
        self.len += 1;
        if self.len == 1 || (self.fresh.get() && at < self.cached_next.get()) {
            self.cached_next.set(at);
            self.fresh.set(true);
        }
    }

    /// Re-buckets every pending event into a ring of at least `needed`
    /// cycles (next power of two, at least doubling).  Rare: only reached
    /// when an event lands further ahead than the current ring covers.
    fn grow(&mut self, needed: usize) {
        let old_size = self.heads.len();
        let new_size = needed.max(old_size * 2).next_power_of_two();
        let old_mask = self.mask;
        let old_base_slot = (self.base as usize) & old_mask;
        let old_heads = std::mem::replace(&mut self.heads, vec![EMPTY_HEAD; new_size]);
        self.occupancy = vec![0; new_size / 64];
        self.mask = new_size - 1;
        for (old_slot, head) in old_heads.into_iter().enumerate() {
            if head.complete == NIL && head.reeval == NIL {
                continue;
            }
            let dist = old_slot.wrapping_sub(old_base_slot) & old_mask;
            let cycle = self.base + dist as Cycle;
            let new_slot = (cycle as usize) & self.mask;
            self.occupancy[new_slot >> 6] |= 1u64 << (new_slot & 63);
            // The whole chains move verbatim: a bucket maps to exactly one
            // new bucket, which is empty (injective slot mapping).
            debug_assert_eq!(self.heads[new_slot].complete, NIL);
            debug_assert_eq!(self.heads[new_slot].reeval, NIL);
            self.heads[new_slot] = head;
        }
    }
}

/// The set of ready (issuable) instructions, keyed by stream index — which
/// is window age, so "oldest first" is "lowest set bit first".
#[derive(Debug, Clone)]
pub(crate) struct ReadySet {
    words: Vec<u64>,
    /// Lower bound on the word holding the lowest set bit (lazily raised
    /// while scanning, lowered on insert).
    min_word: usize,
    count: usize,
}

impl ReadySet {
    pub(crate) fn new(stream_len: usize) -> Self {
        let mut set = ReadySet {
            words: Vec::new(),
            min_word: 0,
            count: 0,
        };
        set.reset(stream_len);
        set
    }

    /// Re-sizes for a (possibly different) stream and clears every bit,
    /// reusing the word buffer's capacity.  An already-empty set (the state
    /// every completed run leaves behind) only adjusts its length — the
    /// insert/remove pair keeps the words exactly zero.
    pub(crate) fn reset(&mut self, stream_len: usize) {
        if self.count != 0 {
            self.words.fill(0);
            self.count = 0;
        }
        self.words.resize(stream_len.div_ceil(64), 0);
        self.min_word = 0;
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    pub(crate) fn insert(&mut self, idx: usize) {
        let word = idx >> 6;
        let bit = 1u64 << (idx & 63);
        debug_assert_eq!(self.words[word] & bit, 0, "instruction already ready");
        self.words[word] |= bit;
        self.count += 1;
        if word < self.min_word {
            self.min_word = word;
        }
    }

    #[inline]
    pub(crate) fn remove(&mut self, idx: usize) {
        let word = idx >> 6;
        let bit = 1u64 << (idx & 63);
        debug_assert_ne!(self.words[word] & bit, 0, "instruction not ready");
        self.words[word] &= !bit;
        self.count -= 1;
    }

    /// The smallest member `≥ from`, or `None`.  Scans forward from the
    /// min-word hint; when the scan covers the global minimum (i.e. `from`
    /// does not skip any possible member) the hint is raised past the empty
    /// words, keeping repeated scans cheap.
    #[inline]
    pub(crate) fn peek_ge(&mut self, from: usize) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let from_word = from >> 6;
        // `from` at or below the hinted minimum ⇒ nothing maskable below it
        // exists, so empty words found here are empty absolutely.
        let raise = from <= self.min_word << 6;
        let mut word = from_word.max(self.min_word);
        let mut bits = self.words[word];
        if word == from_word {
            bits &= !0u64 << (from & 63);
        }
        loop {
            if bits != 0 {
                if raise {
                    self.min_word = word;
                }
                return Some((word << 6) + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.words.len() {
                return None;
            }
            if raise {
                self.min_word = word;
            }
            bits = self.words[word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_orders_events_by_cycle() {
        let mut ring = EventRing::new();
        assert!(ring.is_empty());
        assert_eq!(ring.next_cycle(), None);
        ring.push_reeval(17, 1);
        ring.push_complete(5, 2);
        ring.push_complete(90, 3);
        assert_eq!(ring.next_cycle(), Some(5));
        let (complete, reeval) = ring.take_at(5);
        assert_eq!(ring.chain_next(complete), (NIL, 2));
        assert_eq!(reeval, NIL);
        ring.advance_base(6);
        assert_eq!(ring.next_cycle(), Some(17));
        let (complete, reeval) = ring.take_at(17);
        assert_eq!(complete, NIL);
        assert_eq!(ring.chain_next(reeval), (NIL, 1));
        ring.advance_base(18);
        assert_eq!(ring.next_cycle(), Some(90));
        let (complete, _) = ring.take_at(90);
        assert_eq!(ring.chain_next(complete), (NIL, 3));
        assert!(ring.is_empty());
    }

    #[test]
    fn completions_and_reevals_are_kept_apart() {
        let mut ring = EventRing::new();
        ring.push_reeval(4, 10);
        ring.push_complete(4, 11);
        ring.push_complete(4, 12);
        // The caller walks the completion chain first, then re-evaluations.
        let (complete, reeval) = ring.take_at(4);
        let (complete, last_in) = ring.chain_next(complete);
        assert_eq!(last_in, 12, "chains are last-in first-out");
        assert_eq!(ring.chain_next(complete), (NIL, 11));
        assert_eq!(ring.chain_next(reeval), (NIL, 10));
        assert!(ring.is_empty());
        assert_eq!(ring.take_at(4), (NIL, NIL));
    }

    #[test]
    fn nodes_are_recycled_through_the_free_list() {
        let mut ring = EventRing::new();
        for round in 0..100 {
            ring.push_complete(round + 1, round as u32);
            ring.push_reeval(round + 1, round as u32);
            let (complete, reeval) = ring.take_at(round + 1);
            assert_eq!(ring.chain_next(complete), (NIL, round as u32));
            assert_eq!(ring.chain_next(reeval), (NIL, round as u32));
            ring.advance_base(round + 2);
        }
        assert!(ring.is_empty());
        assert!(ring.nodes.len() <= 2, "pool should recycle, not grow");
    }

    #[test]
    fn far_events_grow_the_ring() {
        let mut ring = EventRing::new();
        ring.push_complete(3, 1);
        ring.push_complete(100_000, 2);
        assert_eq!(ring.next_cycle(), Some(3));
        let (complete, _) = ring.take_at(3);
        assert_eq!(ring.chain_next(complete), (NIL, 1));
        ring.advance_base(4);
        assert_eq!(ring.next_cycle(), Some(100_000));
        let (complete, _) = ring.take_at(100_000);
        assert_eq!(ring.chain_next(complete), (NIL, 2));
    }

    #[test]
    fn wrapping_across_the_ring_boundary_is_sound() {
        let mut ring = EventRing::new();
        // Walk base beyond one ring revolution with interleaved events.
        let mut now: Cycle = 0;
        for round in 0..40u64 {
            let at = now + 13 + (round % 7);
            ring.push_reeval(at, round as u32);
            assert_eq!(ring.next_cycle(), Some(at));
            let (_, reeval) = ring.take_at(at);
            assert_eq!(ring.chain_next(reeval), (NIL, round as u32));
            now = at;
            ring.advance_base(now + 1);
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn growth_with_a_wrapped_base_rebuckets_correctly() {
        // Regression test for the grow/wrap path: no event-driven run used
        // to push an event further than INITIAL_BUCKETS cycles ahead, so
        // `grow` re-bucketing with a *wrapped* base (base slot in the
        // middle of the ring, pending events on both sides of the wrap
        // point) was never executed.  A memory differential > 256 does
        // exactly that mid-run.
        let mut ring = EventRing::new();
        // Walk base deep into the second revolution so the base slot wraps.
        let base: Cycle = 1000; // 1000 & 255 = 232: near the end of the ring
        ring.advance_base(base);
        // Events on both sides of the wrap point of the old ring...
        ring.push_complete(base + 5, 1); // slot 237 (before the wrap)
        ring.push_reeval(base + 40, 2); // slot 16 (after the wrap)
        ring.push_complete(base + 200, 3); // slot 176
                                           // ...then one past the ring size, forcing a grow to 512.
        ring.push_complete(base + 300, 4);
        ring.push_reeval(base + 300, 5);
        assert_eq!(ring.next_cycle(), Some(base + 5));
        let (complete, reeval) = ring.take_at(base + 5);
        assert_eq!(ring.chain_next(complete), (NIL, 1));
        assert_eq!(reeval, NIL);
        ring.advance_base(base + 6);
        assert_eq!(ring.next_cycle(), Some(base + 40));
        let (complete, reeval) = ring.take_at(base + 40);
        assert_eq!(complete, NIL);
        assert_eq!(ring.chain_next(reeval), (NIL, 2));
        ring.advance_base(base + 41);
        assert_eq!(ring.next_cycle(), Some(base + 200));
        let (complete, _) = ring.take_at(base + 200);
        assert_eq!(ring.chain_next(complete), (NIL, 3));
        ring.advance_base(base + 201);
        // The far bucket kept its completion/re-evaluation separation.
        assert_eq!(ring.next_cycle(), Some(base + 300));
        let (complete, reeval) = ring.take_at(base + 300);
        assert_eq!(ring.chain_next(complete), (NIL, 4));
        assert_eq!(ring.chain_next(reeval), (NIL, 5));
        assert!(ring.is_empty());
    }

    #[test]
    fn growth_preserves_the_cached_earliest_event() {
        let mut ring = EventRing::new();
        ring.advance_base(500);
        ring.push_reeval(510, 1);
        // Peek so the cache is fresh...
        assert_eq!(ring.next_cycle(), Some(510));
        // ...then grow; the cached cycle must survive re-bucketing.
        ring.push_complete(500 + 400, 2);
        assert_eq!(ring.next_cycle(), Some(510));
        let (_, reeval) = ring.take_at(510);
        assert_eq!(ring.chain_next(reeval), (NIL, 1));
        ring.advance_base(511);
        assert_eq!(ring.next_cycle(), Some(900));
    }

    #[test]
    fn push_exactly_at_the_ring_capacity_boundary_grows() {
        // dist == heads.len() is the first out-of-range distance; off by
        // one here would alias the base bucket.
        let mut ring = EventRing::new();
        ring.push_complete(0, 1);
        ring.push_complete(INITIAL_BUCKETS as Cycle, 2); // dist == size
        assert_eq!(ring.next_cycle(), Some(0));
        let (complete, _) = ring.take_at(0);
        assert_eq!(ring.chain_next(complete), (NIL, 1));
        ring.advance_base(1);
        assert_eq!(ring.next_cycle(), Some(INITIAL_BUCKETS as Cycle));
        let (complete, _) = ring.take_at(INITIAL_BUCKETS as Cycle);
        assert_eq!(ring.chain_next(complete), (NIL, 2));
    }

    #[test]
    fn repeated_growth_keeps_every_pending_event() {
        // Grow twice in a row (256 → 512 → 1024) with survivors from each
        // generation still pending.
        let mut ring = EventRing::new();
        ring.push_reeval(10, 0);
        ring.push_reeval(400, 1); // grows to 512
        ring.push_reeval(900, 2); // grows to 1024
        for (at, idx) in [(10, 0), (400, 1), (900, 2)] {
            assert_eq!(ring.next_cycle(), Some(at));
            let (_, reeval) = ring.take_at(at);
            assert_eq!(ring.chain_next(reeval), (NIL, idx));
            ring.advance_base(at + 1);
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn randomized_ring_matches_a_sorted_model() {
        // Drive the ring with pseudo-random pushes and drains (long-horizon
        // events included, so growth and wrap both occur repeatedly) and
        // hold it to a sorted-vector model.
        let mut ring = EventRing::new();
        let mut model: Vec<(Cycle, u32, bool)> = Vec::new(); // (cycle, idx, is_reeval)
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = |bound: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % bound
        };
        let mut now: Cycle = 0;
        let mut counter: u32 = 0;
        for _ in 0..2000 {
            match next(3) {
                0 | 1 => {
                    // Push 1-3 events; occasionally far beyond the ring.
                    for _ in 0..=next(2) {
                        let horizon = if next(10) == 0 { 5000 } else { 300 };
                        let at = now + 1 + next(horizon);
                        let idx = counter;
                        counter += 1;
                        if next(2) == 0 {
                            ring.push_complete(at, idx);
                            model.push((at, idx, false));
                        } else {
                            ring.push_reeval(at, idx);
                            model.push((at, idx, true));
                        }
                    }
                }
                _ => {
                    // Drain the earliest cycle, if any.
                    let Some(at) = ring.next_cycle() else {
                        continue;
                    };
                    let expected_at = model.iter().map(|&(t, ..)| t).min().unwrap();
                    assert_eq!(at, expected_at, "earliest-cycle mismatch");
                    let (mut complete, mut reeval) = ring.take_at(at);
                    let mut got: Vec<(u32, bool)> = Vec::new();
                    while complete != NIL {
                        let (next_node, idx) = ring.chain_next(complete);
                        complete = next_node;
                        got.push((idx, false));
                    }
                    while reeval != NIL {
                        let (next_node, idx) = ring.chain_next(reeval);
                        reeval = next_node;
                        got.push((idx, true));
                    }
                    let mut want: Vec<(u32, bool)> = model
                        .iter()
                        .filter(|&&(t, ..)| t == at)
                        .map(|&(_, idx, r)| (idx, r))
                        .collect();
                    model.retain(|&(t, ..)| t != at);
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "bucket contents mismatch at cycle {at}");
                    now = at;
                    ring.advance_base(now + 1);
                }
            }
        }
    }

    #[test]
    fn stale_pushes_clamp_to_the_drain_point() {
        let mut ring = EventRing::new();
        ring.advance_base(50);
        ring.push_reeval(10, 7);
        assert_eq!(ring.next_cycle(), Some(50));
        let (_, reeval) = ring.take_at(50);
        assert_eq!(ring.chain_next(reeval), (NIL, 7));
    }

    #[test]
    fn ready_set_scans_oldest_first() {
        let mut ready = ReadySet::new(300);
        assert!(ready.is_empty());
        assert_eq!(ready.peek_ge(0), None);
        ready.insert(200);
        ready.insert(3);
        ready.insert(64);
        assert_eq!(ready.peek_ge(0), Some(3));
        assert_eq!(ready.peek_ge(4), Some(64));
        assert_eq!(ready.peek_ge(65), Some(200));
        assert_eq!(ready.peek_ge(201), None);
        ready.remove(3);
        assert_eq!(ready.peek_ge(0), Some(64));
        // Insert below the raised hint: the minimum must be found again.
        ready.insert(1);
        assert_eq!(ready.peek_ge(0), Some(1));
    }
}
