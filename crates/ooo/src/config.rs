//! Configuration of a single out-of-order unit.

use serde::{Deserialize, Serialize};

/// When an instruction's window slot is released.
///
/// The paper's machines have no speculation and no precise-exception
/// requirement, so both policies are plausible readings of its "instruction
/// window for reordering operations".  The default is the conventional
/// reorder-buffer behaviour (in-order release at completion); the
/// free-at-issue alternative is exercised by the resource-sensitivity
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RetirePolicy {
    /// Slots are released in program order, once the instruction (and every
    /// older one) has completed.
    #[default]
    InOrderAtComplete,
    /// A slot is released as soon as its instruction has been issued to a
    /// functional unit, regardless of completion order.
    FreeAtIssue,
}

/// Limits on functional units and memory ports.
///
/// The paper's environment is idealised ("to provide the best opportunity
/// for prefetching data"), so every limit defaults to unlimited; the
/// restricted-issue ablation sets them to small numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FuConfig {
    /// Integer / address ALUs (also used by cross-unit copies); `None` is
    /// unlimited.
    pub int_units: Option<usize>,
    /// Floating point units; `None` is unlimited.
    pub fp_units: Option<usize>,
    /// Memory ports (load requests, consumes, blocking loads and stores);
    /// `None` is unlimited.
    pub mem_ports: Option<usize>,
}

impl FuConfig {
    /// The idealised configuration: no limits at all.
    #[must_use]
    pub fn unlimited() -> Self {
        FuConfig::default()
    }

    /// A restricted configuration used by the ablation experiments.
    #[must_use]
    pub fn restricted(int_units: usize, fp_units: usize, mem_ports: usize) -> Self {
        FuConfig {
            int_units: Some(int_units),
            fp_units: Some(fp_units),
            mem_ports: Some(mem_ports),
        }
    }
}

/// Configuration of one out-of-order unit (the AU, the DU, the SWSM's single
/// pipeline, or the scalar reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitConfig {
    /// Instruction-window capacity; `None` models an unlimited window.
    pub window_size: Option<usize>,
    /// Maximum instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Maximum instructions dispatched into the window per cycle; `None`
    /// uses the issue width.
    pub dispatch_width: Option<usize>,
    /// When window slots are released.
    pub retire: RetirePolicy,
    /// Functional-unit limits.
    pub fu: FuConfig,
}

impl UnitConfig {
    /// A unit with the given window size and issue width and otherwise
    /// idealised resources.
    #[must_use]
    pub fn new(window_size: usize, issue_width: usize) -> Self {
        UnitConfig {
            window_size: Some(window_size),
            issue_width,
            dispatch_width: None,
            retire: RetirePolicy::default(),
            fu: FuConfig::unlimited(),
        }
    }

    /// A unit with an unlimited window.
    #[must_use]
    pub fn unlimited_window(issue_width: usize) -> Self {
        UnitConfig {
            window_size: None,
            issue_width,
            dispatch_width: None,
            retire: RetirePolicy::default(),
            fu: FuConfig::unlimited(),
        }
    }

    /// The effective dispatch width.
    #[must_use]
    pub fn effective_dispatch_width(&self) -> usize {
        self.dispatch_width.unwrap_or(self.issue_width)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found (zero issue width,
    /// zero window, or zero dispatch width).
    pub fn validate(&self) -> Result<(), String> {
        if self.issue_width == 0 {
            return Err("issue width must be at least 1".to_string());
        }
        if self.window_size == Some(0) {
            return Err("window size must be at least 1 (or None for unlimited)".to_string());
        }
        if self.dispatch_width == Some(0) {
            return Err("dispatch width must be at least 1 (or None)".to_string());
        }
        Ok(())
    }
}

impl Default for UnitConfig {
    fn default() -> Self {
        UnitConfig::new(32, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_width_defaults_to_issue_width() {
        let cfg = UnitConfig::new(16, 5);
        assert_eq!(cfg.effective_dispatch_width(), 5);
        let cfg = UnitConfig {
            dispatch_width: Some(2),
            ..UnitConfig::new(16, 5)
        };
        assert_eq!(cfg.effective_dispatch_width(), 2);
    }

    #[test]
    fn validation_catches_zero_parameters() {
        assert!(UnitConfig::new(8, 4).validate().is_ok());
        assert!(UnitConfig::unlimited_window(9).validate().is_ok());
        assert!(UnitConfig::new(8, 0).validate().is_err());
        let zero_window = UnitConfig {
            window_size: Some(0),
            ..UnitConfig::default()
        };
        assert!(zero_window.validate().is_err());
        let zero_dispatch = UnitConfig {
            dispatch_width: Some(0),
            ..UnitConfig::default()
        };
        assert!(zero_dispatch.validate().is_err());
    }

    #[test]
    fn default_retire_policy_is_in_order() {
        assert_eq!(RetirePolicy::default(), RetirePolicy::InOrderAtComplete);
        assert_eq!(
            UnitConfig::default().retire,
            RetirePolicy::InOrderAtComplete
        );
    }

    #[test]
    fn fu_config_constructors() {
        let unlimited = FuConfig::unlimited();
        assert_eq!(unlimited.int_units, None);
        assert_eq!(unlimited.fp_units, None);
        assert_eq!(unlimited.mem_ports, None);
        let restricted = FuConfig::restricted(2, 1, 1);
        assert_eq!(restricted.int_units, Some(2));
        assert_eq!(restricted.fp_units, Some(1));
        assert_eq!(restricted.mem_ports, Some(1));
    }
}
