//! The naive cycle-stepped scheduler, retained verbatim as the semantic
//! reference for the event-driven [`UnitSim`](crate::UnitSim).
//!
//! [`NaiveUnitSim`] is the original implementation of the out-of-order unit:
//! every cycle it rescans the whole window and re-polls every dependence of
//! every unissued instruction — O(cycles × window × deps) work.  It is kept
//! because it is *obviously* correct, which makes it the oracle for the
//! differential tests (`tests/scheduler_differential.rs` and the machine
//! level `run_reference` paths) and the baseline the benchmark suite
//! measures speedups against.  Its behaviour must never change; performance
//! work happens in the event-driven scheduler only.

use crate::{ExecContext, FuClass, FuPool, RetirePolicy, UnitConfig, UnitStats};
use dae_isa::{Cycle, LatencyModel};
use dae_trace::{ExecKind, MachineInst};
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Index into the unit's instruction stream.
    idx: usize,
    issued: bool,
}

/// The original cycle-stepped simulator of one out-of-order unit (see the
/// module docs; use [`UnitSim`](crate::UnitSim) for anything
/// performance-sensitive).
///
/// # Example
///
/// ```
/// use dae_isa::{LatencyModel, OpKind};
/// use dae_ooo::{NaiveUnitSim, NoMemoryContext, UnitConfig};
/// use dae_trace::{Dep, MachineInst};
///
/// let stream = vec![
///     MachineInst::arith(0, OpKind::IntAlu, vec![]),
///     MachineInst::arith(1, OpKind::IntAlu, vec![Dep::local(0)]),
/// ];
/// let mut unit = NaiveUnitSim::new(stream, UnitConfig::new(8, 4), LatencyModel::paper_default());
/// let mut cycle = 0;
/// while !unit.is_done() {
///     unit.step(cycle, &mut NoMemoryContext);
///     cycle += 1;
/// }
/// assert_eq!(unit.max_completion(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NaiveUnitSim {
    stream: Arc<Vec<MachineInst>>,
    config: UnitConfig,
    latencies: LatencyModel,
    fu: FuPool,
    window: VecDeque<WindowEntry>,
    dispatch_ptr: usize,
    completions: Vec<Option<Cycle>>,
    max_completion: Cycle,
    stats: UnitStats,
}

impl NaiveUnitSim {
    /// Creates a unit that will execute `stream` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`UnitConfig::validate`]).
    #[must_use]
    pub fn new(
        stream: impl Into<Arc<Vec<MachineInst>>>,
        config: UnitConfig,
        latencies: LatencyModel,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|msg| panic!("invalid unit configuration: {msg}"));
        let stream = stream.into();
        let len = stream.len();
        NaiveUnitSim {
            stream,
            config,
            latencies,
            fu: FuPool::new(config.fu),
            window: VecDeque::new(),
            dispatch_ptr: 0,
            completions: vec![None; len],
            max_completion: 0,
            stats: UnitStats::default(),
        }
    }

    /// The instruction stream being executed.
    #[must_use]
    pub fn stream(&self) -> &[MachineInst] {
        &self.stream
    }

    /// The unit configuration.
    #[must_use]
    pub fn config(&self) -> &UnitConfig {
        &self.config
    }

    /// Returns `true` once the stream has been fully dispatched and every
    /// window slot has been released.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.dispatch_ptr == self.stream.len() && self.window.is_empty()
    }

    /// The completion cycle of stream instruction `idx`, if it has issued.
    #[must_use]
    pub fn completion(&self, idx: usize) -> Option<Cycle> {
        self.completions.get(idx).copied().flatten()
    }

    /// The completion cycles of every instruction (indexed by stream
    /// position).
    #[must_use]
    pub fn completions(&self) -> &[Option<Cycle>] {
        &self.completions
    }

    /// The largest completion cycle observed so far.
    #[must_use]
    pub fn max_completion(&self) -> Cycle {
        self.max_completion
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Total rejected issue attempts due to functional-unit limits.
    #[must_use]
    pub fn fu_rejections(&self) -> u64 {
        self.fu.rejections()
    }

    /// Current window occupancy.
    #[must_use]
    pub fn window_occupancy(&self) -> usize {
        self.window.len()
    }

    /// The architectural trace position of the oldest instruction still
    /// holding a window slot.
    #[must_use]
    pub fn oldest_inflight_trace_pos(&self) -> Option<usize> {
        self.window.front().map(|e| self.stream[e.idx].trace_pos)
    }

    /// The architectural trace position of the most recently dispatched
    /// instruction.
    #[must_use]
    pub fn youngest_dispatched_trace_pos(&self) -> Option<usize> {
        if self.dispatch_ptr == 0 {
            None
        } else {
            Some(self.stream[self.dispatch_ptr - 1].trace_pos)
        }
    }

    /// Executes one machine cycle.
    pub fn step<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        self.stats.cycles += 1;
        self.stats.issue_slots += self.config.issue_width as u64;
        self.fu.begin_cycle();

        self.retire(now);
        self.dispatch();
        self.issue(now, ctx);

        self.stats.occupancy_sum += self.window.len() as u64;
        self.stats.occupancy_max = self.stats.occupancy_max.max(self.window.len());
    }

    fn retire(&mut self, now: Cycle) {
        match self.config.retire {
            RetirePolicy::InOrderAtComplete => {
                while let Some(front) = self.window.front() {
                    let done = self.completions[front.idx].is_some_and(|t| t <= now);
                    if done {
                        self.window.pop_front();
                        self.stats.retired += 1;
                    } else {
                        break;
                    }
                }
            }
            RetirePolicy::FreeAtIssue => {
                let before = self.window.len();
                self.window.retain(|e| !e.issued);
                self.stats.retired += (before - self.window.len()) as u64;
            }
        }
    }

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        let dispatch_width = self.config.effective_dispatch_width();
        let mut blocked_by_full_window = false;
        while self.dispatch_ptr < self.stream.len() && dispatched < dispatch_width {
            let has_space = match self.config.window_size {
                Some(cap) => self.window.len() < cap,
                None => true,
            };
            if !has_space {
                blocked_by_full_window = true;
                break;
            }
            self.window.push_back(WindowEntry {
                idx: self.dispatch_ptr,
                issued: false,
            });
            self.dispatch_ptr += 1;
            dispatched += 1;
            self.stats.dispatched += 1;
        }
        if blocked_by_full_window {
            self.stats.window_full_cycles += 1;
        }
    }

    fn issue<C: ExecContext>(&mut self, now: Cycle, ctx: &mut C) {
        let mut issued_this_cycle = 0;
        let had_unissued = self.window.iter().any(|e| !e.issued);
        for slot in 0..self.window.len() {
            if issued_this_cycle >= self.config.issue_width {
                break;
            }
            let entry = self.window[slot];
            if entry.issued {
                continue;
            }
            if !self.is_ready(entry.idx, now, ctx) {
                continue;
            }
            let class = FuClass::of(&self.stream[entry.idx]);
            if !self.fu.try_acquire(class) {
                continue;
            }
            let completion = self.execute(entry.idx, now, ctx);
            self.completions[entry.idx] = Some(completion);
            self.max_completion = self.max_completion.max(completion);
            self.window[slot].issued = true;
            issued_this_cycle += 1;
            self.stats.issued += 1;
        }
        if had_unissued && issued_this_cycle == 0 {
            self.stats.starved_cycles += 1;
        }
    }

    fn is_ready<C: ExecContext>(&self, idx: usize, now: Cycle, ctx: &C) -> bool {
        let inst = &self.stream[idx];
        let operands_ready = inst.deps.iter().all(|dep| {
            if dep.is_cross() {
                ctx.cross_ready_at(dep.index()).is_some_and(|t| t <= now)
            } else {
                self.completions[dep.index()].is_some_and(|t| t <= now)
            }
        });
        operands_ready && ctx.data_ready(inst, now)
    }

    fn execute<C: ExecContext>(&mut self, idx: usize, now: Cycle, ctx: &mut C) -> Cycle {
        let inst = &self.stream[idx];
        match inst.kind {
            ExecKind::Arith => now + self.latencies.latency_of(inst.op),
            ExecKind::CopySend => now + 1,
            ExecKind::LoadRequest
            | ExecKind::LoadConsume
            | ExecKind::LoadBlocking
            | ExecKind::StoreOp => ctx.execute_memory(inst, now),
        }
    }
}
