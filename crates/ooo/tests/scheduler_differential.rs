//! Differential property tests: the event-driven scheduler must be
//! cycle-exact against the retained naive reference on random instruction
//! streams, across retirement policies, window/issue shapes, functional
//! unit limits and data gates — both when stepped every cycle and when
//! driven through `next_activity` / `idle_advance` time-skipping.

use dae_isa::{Cycle, LatencyModel, OpKind};
use dae_ooo::{
    ExecContext, FuConfig, NaiveUnitSim, NoMemoryContext, RetirePolicy, UnitConfig, UnitSim,
};
use dae_trace::{Dep, ExecKind, MachineInst};
use proptest::prelude::*;

/// Builds a random stream mixing arithmetic, gated consumes, requests and
/// stores; each instruction depends on up to two uniformly chosen earlier
/// instructions.
fn random_stream(ops: &[(u8, u8, u8)]) -> Vec<MachineInst> {
    ops.iter()
        .enumerate()
        .map(|(i, &(kind, da, db))| {
            let mut deps = Vec::new();
            if i > 0 {
                deps.push(Dep::local(da as usize % i));
                if db % 3 == 0 {
                    deps.push(Dep::local(db as usize % i));
                }
            }
            match kind % 8 {
                0 => MachineInst::arith(i, OpKind::IntAlu, deps),
                1 => MachineInst::arith(i, OpKind::FpAdd, deps),
                2 => MachineInst::arith(i, OpKind::FpMul, deps),
                3 => MachineInst::arith(i, OpKind::FpDiv, deps),
                4 => MachineInst::memory(
                    i,
                    OpKind::Load,
                    ExecKind::LoadConsume,
                    deps,
                    i as u32,
                    Some(i as u64 * 8),
                ),
                5 => MachineInst::memory(
                    i,
                    OpKind::Load,
                    ExecKind::LoadRequest,
                    deps,
                    i as u32,
                    Some(i as u64 * 8),
                ),
                6 => MachineInst::memory(
                    i,
                    OpKind::Store,
                    ExecKind::StoreOp,
                    deps,
                    i as u32,
                    Some(i as u64 * 8),
                ),
                _ => MachineInst::memory(
                    i,
                    OpKind::Load,
                    ExecKind::LoadBlocking,
                    deps,
                    i as u32,
                    Some(i as u64 * 8),
                ),
            }
        })
        .collect()
}

/// A context whose data gate opens for each consume at a tag-dependent
/// cycle, with the naive Poll-style default `gate_wait` — stresses the
/// event scheduler's poll list against the reference's per-cycle re-check.
#[derive(Clone, Copy)]
struct StripedGate {
    period: Cycle,
}

impl ExecContext for StripedGate {
    fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
        match inst.kind {
            ExecKind::LoadConsume => {
                let open_at = Cycle::from(inst.tag.unwrap_or(0) % 7) * self.period;
                now >= open_at
            }
            _ => true,
        }
    }

    fn execute_memory(&mut self, inst: &MachineInst, now: Cycle) -> Cycle {
        match inst.kind {
            ExecKind::LoadBlocking => now + 1 + 40,
            _ => now + 1,
        }
    }
}

/// Asserts that the event-driven unit and the naive reference agree on
/// every observable after running the same stream under the same
/// configuration: final time, per-instruction completions, the full
/// statistics block and the FU rejection count.
fn assert_equivalent<C: ExecContext + Clone>(
    stream: &[MachineInst],
    config: UnitConfig,
    ctx: &C,
    skip: bool,
) {
    let latencies = LatencyModel::paper_default();
    let mut naive = NaiveUnitSim::new(stream.to_vec(), config, latencies);
    let mut naive_ctx = ctx.clone();
    let mut cycle: Cycle = 0;
    while !naive.is_done() {
        naive.step(cycle, &mut naive_ctx);
        cycle += 1;
        assert!(cycle < 1_000_000, "naive runaway");
    }

    let mut event = UnitSim::new(stream.to_vec(), config, latencies);
    let mut event_ctx = ctx.clone();
    let mut now: Cycle = 0;
    while !event.is_done() {
        event.step(now, &mut event_ctx);
        let next = if skip {
            event.next_activity(now).unwrap_or(now + 1)
        } else {
            now + 1
        };
        assert!(next > now, "next_activity must advance");
        event.idle_advance(next - now - 1);
        now = next;
        assert!(now < 1_000_000, "event runaway");
    }

    assert_eq!(event.stats(), naive.stats(), "stats diverged (skip={skip})");
    let event_completions: Vec<_> = (0..event.stream().len())
        .map(|i| event.completion(i))
        .collect();
    assert_eq!(
        event_completions.as_slice(),
        naive.completions(),
        "completion times diverged (skip={skip})"
    );
    assert_eq!(event.max_completion(), naive.max_completion());
    assert_eq!(event.fu_rejections(), naive.fu_rejections());
    assert_eq!(event.stats().cycles, cycle, "total cycle count diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arithmetic-only streams: every (window, width, retire policy)
    /// combination agrees with the reference, stepped and time-skipped.
    #[test]
    fn arithmetic_streams_are_cycle_exact(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
        window in 1usize..48,
        width in 1usize..10,
    ) {
        let stream: Vec<_> = random_stream(&ops)
            .into_iter()
            .enumerate()
            .map(|(i, inst)| MachineInst::arith(i, inst.op, inst.deps))
            .collect();
        for retire in [RetirePolicy::InOrderAtComplete, RetirePolicy::FreeAtIssue] {
            let config = UnitConfig { retire, ..UnitConfig::new(window, width) };
            assert_equivalent(&stream, config, &NoMemoryContext, false);
            assert_equivalent(&stream, config, &NoMemoryContext, true);
        }
    }

    /// Mixed memory/arithmetic streams under a gate context that the event
    /// scheduler can only poll.
    #[test]
    fn gated_memory_streams_are_cycle_exact(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        window in 1usize..32,
        width in 1usize..8,
        period in 1u64..40,
    ) {
        let stream = random_stream(&ops);
        let ctx = StripedGate { period };
        for retire in [RetirePolicy::InOrderAtComplete, RetirePolicy::FreeAtIssue] {
            let config = UnitConfig { retire, ..UnitConfig::new(window, width) };
            assert_equivalent(&stream, config, &ctx, false);
            assert_equivalent(&stream, config, &ctx, true);
        }
    }

    /// Functional-unit limits: rejection accounting and issue order match.
    #[test]
    fn fu_limited_streams_are_cycle_exact(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        int_units in 1usize..3,
        fp_units in 1usize..3,
        mem_ports in 1usize..3,
    ) {
        let stream = random_stream(&ops);
        let config = UnitConfig {
            fu: FuConfig::restricted(int_units, fp_units, mem_ports),
            ..UnitConfig::new(24, 6)
        };
        let ctx = StripedGate { period: 5 };
        assert_equivalent(&stream, config, &ctx, false);
        assert_equivalent(&stream, config, &ctx, true);
    }

    /// Unlimited windows and narrow dispatch widths.
    #[test]
    fn unusual_shapes_are_cycle_exact(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        width in 1usize..6,
        dispatch in 1usize..4,
    ) {
        let stream = random_stream(&ops);
        let unlimited = UnitConfig {
            dispatch_width: Some(dispatch),
            ..UnitConfig::unlimited_window(width)
        };
        assert_equivalent(&stream, unlimited, &StripedGate { period: 9 }, true);
        let narrow = UnitConfig {
            dispatch_width: Some(dispatch),
            ..UnitConfig::new(2, width)
        };
        assert_equivalent(&stream, narrow, &StripedGate { period: 9 }, true);
    }
}
