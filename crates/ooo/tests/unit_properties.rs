//! Property-based tests of the out-of-order unit: on randomly generated
//! dependence chains the simulator must respect the dataflow limit, the
//! serial upper bound, and resource monotonicity, under every retirement
//! policy.

use dae_isa::{Cycle, LatencyModel, OpKind};
use dae_ooo::{ExecContext, FuConfig, NoMemoryContext, RetirePolicy, UnitConfig, UnitSim};
use dae_trace::{Dep, ExecKind, MachineInst};
use proptest::prelude::*;

/// Builds a random arithmetic-only stream: each instruction depends on up to
/// two uniformly chosen earlier instructions.
fn random_stream(ops: &[(u8, u8, u8)]) -> Vec<MachineInst> {
    ops.iter()
        .enumerate()
        .map(|(i, &(kind, da, db))| {
            let op = match kind % 4 {
                0 => OpKind::IntAlu,
                1 => OpKind::FpAdd,
                2 => OpKind::FpMul,
                _ => OpKind::FpDiv,
            };
            let mut deps = Vec::new();
            if i > 0 {
                deps.push(Dep::local(da as usize % i));
                if db % 3 == 0 {
                    deps.push(Dep::local(db as usize % i));
                }
            }
            MachineInst::arith(i, op, deps)
        })
        .collect()
}

fn run(stream: Vec<MachineInst>, config: UnitConfig) -> (Cycle, u64) {
    let mut unit = UnitSim::new(stream, config, LatencyModel::paper_default());
    let mut ctx = NoMemoryContext;
    let mut cycle = 0;
    while !unit.is_done() {
        unit.step(cycle, &mut ctx);
        cycle += 1;
        assert!(cycle < 1_000_000, "runaway simulation");
    }
    (unit.max_completion(), unit.stats().issued)
}

/// The dataflow limit of an arithmetic stream: longest dependence chain.
fn dataflow_limit(stream: &[MachineInst]) -> Cycle {
    let latencies = LatencyModel::paper_default();
    let mut finish = vec![0u64; stream.len()];
    for (i, inst) in stream.iter().enumerate() {
        let ready = inst
            .deps
            .iter()
            .map(|d| finish[d.index()])
            .max()
            .unwrap_or(0);
        finish[i] = ready + latencies.latency_of(inst.op);
    }
    finish.into_iter().max().unwrap_or(0)
}

/// The fully serial upper bound: the sum of all latencies.
fn serial_bound(stream: &[MachineInst]) -> Cycle {
    let latencies = LatencyModel::paper_default();
    stream.iter().map(|i| latencies.latency_of(i.op)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Execution time always sits between the dataflow limit and the serial
    /// bound, for both retirement policies.
    #[test]
    fn execution_time_is_bounded(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
        window in 1usize..64,
        width in 1usize..12,
    ) {
        let stream = random_stream(&ops);
        let lower = dataflow_limit(&stream);
        let upper = serial_bound(&stream);
        for retire in [RetirePolicy::InOrderAtComplete, RetirePolicy::FreeAtIssue] {
            let config = UnitConfig { retire, ..UnitConfig::new(window, width) };
            let (cycles, issued) = run(stream.clone(), config);
            prop_assert_eq!(issued as usize, stream.len());
            prop_assert!(cycles >= lower, "cycles {cycles} below dataflow limit {lower}");
            prop_assert!(cycles <= upper, "cycles {cycles} above serial bound {upper}");
        }
    }

    /// Widening the machine (bigger window, more issue slots, free-at-issue
    /// retirement, unlimited FUs) never slows it down.
    #[test]
    fn more_resources_never_hurt(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        window in 1usize..32,
        width in 1usize..8,
    ) {
        let stream = random_stream(&ops);
        let base = UnitConfig::new(window, width);
        let (base_cycles, _) = run(stream.clone(), base);

        let wider_window = UnitConfig::new(window * 4, width);
        prop_assert!(run(stream.clone(), wider_window).0 <= base_cycles);

        let wider_issue = UnitConfig::new(window, width + 4);
        prop_assert!(run(stream.clone(), wider_issue).0 <= base_cycles);

        let unlimited = UnitConfig { issue_width: width, ..UnitConfig::unlimited_window(width) };
        prop_assert!(run(stream.clone(), unlimited).0 <= base_cycles);

        let free = UnitConfig { retire: RetirePolicy::FreeAtIssue, ..base };
        prop_assert!(run(stream.clone(), free).0 <= base_cycles);
    }

    /// A single-FU machine degenerates to (at least) one cycle per
    /// instruction, and restricted FUs never beat unlimited ones.
    #[test]
    fn functional_unit_limits_behave(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..50),
    ) {
        let stream = random_stream(&ops);
        let unlimited = UnitConfig::new(64, 8);
        let restricted = UnitConfig { fu: FuConfig::restricted(1, 1, 1), ..unlimited };
        let (fast, _) = run(stream.clone(), unlimited);
        let (slow, _) = run(stream.clone(), restricted);
        prop_assert!(slow >= fast);
        prop_assert!(slow >= stream.len() as u64 / 2, "one ALU and one FPU bound throughput");
    }

    /// A data-ready gate that opens at cycle G delays completion to at least
    /// G + 1 but never changes the number of instructions executed.
    #[test]
    fn readiness_gates_delay_but_do_not_drop_work(gate in 1u64..200, trailing in 1usize..20) {
        struct GateAt(Cycle);
        impl ExecContext for GateAt {
            fn data_ready(&self, inst: &MachineInst, now: Cycle) -> bool {
                inst.kind != ExecKind::LoadConsume || now >= self.0
            }
            fn execute_memory(&mut self, _inst: &MachineInst, now: Cycle) -> Cycle {
                now + 1
            }
        }
        let mut stream = vec![MachineInst::memory(
            0,
            OpKind::Load,
            ExecKind::LoadConsume,
            vec![],
            0,
            Some(0x40),
        )];
        for i in 0..trailing {
            stream.push(MachineInst::arith(i + 1, OpKind::IntAlu, vec![Dep::local(i)]));
        }
        let mut unit = UnitSim::new(stream.clone(), UnitConfig::new(8, 2), LatencyModel::paper_default());
        let mut ctx = GateAt(gate);
        let mut cycle = 0;
        while !unit.is_done() {
            unit.step(cycle, &mut ctx);
            cycle += 1;
            prop_assert!(cycle < 100_000);
        }
        prop_assert!(unit.max_completion() > gate);
        prop_assert_eq!(unit.max_completion(), gate + 1 + trailing as u64);
        prop_assert_eq!(unit.stats().issued as usize, stream.len());
    }
}
