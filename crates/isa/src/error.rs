//! Error types for kernel construction and validation.

use crate::{OpKind, StmtId};
use std::error::Error;
use std::fmt;

/// The reasons a [`Kernel`](crate::Kernel) can fail validation.
///
/// Kernels are pure dataflow descriptions of one loop iteration, so the
/// validity conditions are structural: every operand must name an existing
/// statement, intra-iteration references must point *backwards* (a single
/// iteration is a DAG in statement order), loop-carried references must have
/// a non-zero distance, memory statements must carry an address
/// specification, and operands must reference statements that actually
/// produce a value (stores do not).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// The kernel contains no statements.
    Empty,
    /// An operand of `stmt` refers to statement `referenced`, which does not
    /// exist.
    UnknownStatement {
        /// The statement holding the bad operand.
        stmt: StmtId,
        /// The referenced (non-existent) statement.
        referenced: StmtId,
    },
    /// An intra-iteration operand of `stmt` refers to `referenced`, which is
    /// not strictly earlier in statement order.
    ForwardReference {
        /// The statement holding the bad operand.
        stmt: StmtId,
        /// The referenced statement (same or later position).
        referenced: StmtId,
    },
    /// A loop-carried operand of `stmt` has distance zero.
    ZeroCarryDistance {
        /// The statement holding the bad operand.
        stmt: StmtId,
    },
    /// An operand of `stmt` consumes the value of `referenced`, but that
    /// statement is a store and produces no value.
    ValuelessProducer {
        /// The statement holding the bad operand.
        stmt: StmtId,
        /// The referenced store statement.
        referenced: StmtId,
        /// The operation kind of the referenced statement.
        op: OpKind,
    },
    /// A load or store statement has no address specification.
    MissingAddress {
        /// The memory statement without an address.
        stmt: StmtId,
    },
    /// A non-memory statement carries an address specification.
    UnexpectedAddress {
        /// The offending statement.
        stmt: StmtId,
        /// Its operation kind.
        op: OpKind,
    },
    /// An indirect address specification names an operand index that does not
    /// exist on the statement.
    BadIndexOperand {
        /// The memory statement.
        stmt: StmtId,
        /// The out-of-range operand index.
        index: usize,
        /// The number of operands the statement actually has.
        operands: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Empty => write!(f, "kernel has no statements"),
            KernelError::UnknownStatement { stmt, referenced } => write!(
                f,
                "statement {stmt} references unknown statement {referenced}"
            ),
            KernelError::ForwardReference { stmt, referenced } => write!(
                f,
                "statement {stmt} has an intra-iteration reference to statement {referenced} which is not earlier"
            ),
            KernelError::ZeroCarryDistance { stmt } => write!(
                f,
                "statement {stmt} has a loop-carried operand with distance zero"
            ),
            KernelError::ValuelessProducer {
                stmt,
                referenced,
                op,
            } => write!(
                f,
                "statement {stmt} consumes statement {referenced} which is a {op} and produces no value"
            ),
            KernelError::MissingAddress { stmt } => {
                write!(f, "memory statement {stmt} has no address specification")
            }
            KernelError::UnexpectedAddress { stmt, op } => write!(
                f,
                "statement {stmt} is a {op} but carries an address specification"
            ),
            KernelError::BadIndexOperand {
                stmt,
                index,
                operands,
            } => write!(
                f,
                "statement {stmt} names operand {index} as its address index but only has {operands} operands"
            ),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_never_empty() {
        let errors = [
            KernelError::Empty,
            KernelError::UnknownStatement {
                stmt: 1,
                referenced: 9,
            },
            KernelError::ForwardReference {
                stmt: 1,
                referenced: 2,
            },
            KernelError::ZeroCarryDistance { stmt: 3 },
            KernelError::ValuelessProducer {
                stmt: 4,
                referenced: 2,
                op: OpKind::Store,
            },
            KernelError::MissingAddress { stmt: 5 },
            KernelError::UnexpectedAddress {
                stmt: 6,
                op: OpKind::FpAdd,
            },
            KernelError::BadIndexOperand {
                stmt: 7,
                index: 3,
                operands: 1,
            },
        ];
        for err in errors {
            assert!(!format!("{err}").is_empty());
            assert!(!format!("{err:?}").is_empty());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<KernelError>();
    }
}
