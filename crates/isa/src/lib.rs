//! # dae-isa — instruction-set and static kernel model
//!
//! This crate defines the *architectural* vocabulary shared by every other
//! crate in the reproduction of Jones & Topham, *A Comparison of Data
//! Prefetching on an Access Decoupled and Superscalar Machine* (MICRO-30,
//! 1997):
//!
//! * [`OpKind`] — the operation classes the paper's idealised machine
//!   distinguishes (1-cycle integer/address arithmetic, multi-cycle floating
//!   point, loads and stores),
//! * [`UnitClass`] — whether an operation belongs to the *access* stream
//!   (executed on the Address Unit of the decoupled machine) or the *compute*
//!   stream (executed on the Data Unit),
//! * [`LatencyModel`] — the fixed functional-unit latencies,
//! * [`Kernel`] / [`Statement`] / [`Operand`] — a compact static
//!   representation of a loop body (the unit of workload description used by
//!   `dae-workloads`), together with [`KernelBuilder`] for constructing one
//!   programmatically, and
//! * [`AddressPattern`] — how a memory statement generates its effective
//!   addresses when the kernel is expanded into a dynamic trace.
//!
//! The paper's simulations are trace driven and idealised: perfect dependence
//! analysis, register renaming removes all false dependences, loop-closing
//! branches are removed, and there is no speculation.  Consequently a kernel
//! here is a pure dataflow description — statements name their producers
//! directly (within the iteration, across iterations at a given distance, or
//! as loop invariants) and there are no architectural registers to allocate.
//!
//! ## Example
//!
//! ```
//! use dae_isa::{KernelBuilder, AddressPattern, Operand, UnitClass};
//!
//! // A tiny DAXPY-like kernel:  y[i] = a * x[i] + y[i]
//! let mut b = KernelBuilder::new("daxpy");
//! let i = b.induction();
//! let x = b.load_strided(&[Operand::Local(i)], 0x1000, 8);
//! let y = b.load_strided(&[Operand::Local(i)], 0x8000, 8);
//! let ax = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
//! let s = b.fp_add(&[Operand::Local(ax), Operand::Local(y)]);
//! b.store_strided(&[Operand::Local(s), Operand::Local(i)], 0x8000, 8);
//! let kernel = b.build()?;
//!
//! assert_eq!(kernel.statements().len(), 6);
//! assert_eq!(kernel.count_of(|s| s.op.is_memory()), 3);
//! assert_eq!(kernel.statements()[0].unit, UnitClass::Access);
//! # Ok::<(), dae_isa::KernelError>(())
//! ```

mod builder;
mod error;
mod kernel;
mod latency;
mod op;
mod unit;

pub use builder::KernelBuilder;
pub use error::KernelError;
pub use kernel::{AddressPattern, AddressSpec, Kernel, KernelStats, Operand, Statement, StmtId};
pub use latency::LatencyModel;
pub use op::OpKind;
pub use unit::UnitClass;

/// A machine cycle count.
///
/// Every simulator in the workspace reports time in cycles of the idealised
/// machine clock; the paper never uses wall-clock time.
pub type Cycle = u64;

/// A byte address in the simulated flat address space.
///
/// Only equality of addresses matters to the models (prefetch-buffer and
/// bypass matching); there is no simulated data memory content.
pub type Address = u64;
