//! The access / compute partition classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which instruction stream of the access decoupled machine an operation
/// belongs to.
///
/// The decoupled machine (DM) of the paper partitions a program into two
/// loosely-coupled streams:
///
/// * the **access** stream runs on the *Address Unit* (AU) — address
///   arithmetic, loads and stores, and any integer work that feeds an
///   address; and
/// * the **compute** stream runs on the *Data Unit* (DU) — the floating
///   point work that consumes loaded values and produces values to store.
///
/// Workload generators tag every statement with its intended class (the
/// "ground truth" partition); `dae-trace::partition` also provides an
/// automatic classifier so the two can be cross-checked.
///
/// # Example
///
/// ```
/// use dae_isa::UnitClass;
///
/// assert_eq!(UnitClass::Access.other(), UnitClass::Compute);
/// assert_eq!(UnitClass::Compute.other(), UnitClass::Access);
/// assert_eq!(format!("{}", UnitClass::Access), "AU");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnitClass {
    /// The access stream, executed on the Address Unit (AU).
    Access,
    /// The compute stream, executed on the Data Unit (DU).
    Compute,
}

impl UnitClass {
    /// Both classes, in a stable order.
    pub const ALL: [UnitClass; 2] = [UnitClass::Access, UnitClass::Compute];

    /// The opposite class.
    #[must_use]
    pub fn other(self) -> UnitClass {
        match self {
            UnitClass::Access => UnitClass::Compute,
            UnitClass::Compute => UnitClass::Access,
        }
    }

    /// Returns `true` for the access (AU) class.
    #[must_use]
    pub fn is_access(self) -> bool {
        matches!(self, UnitClass::Access)
    }

    /// Returns `true` for the compute (DU) class.
    #[must_use]
    pub fn is_compute(self) -> bool {
        matches!(self, UnitClass::Compute)
    }

    /// The conventional short name of the unit executing this class
    /// (`"AU"` or `"DU"`).
    #[must_use]
    pub fn unit_name(self) -> &'static str {
        match self {
            UnitClass::Access => "AU",
            UnitClass::Compute => "DU",
        }
    }
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.unit_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_an_involution() {
        for class in UnitClass::ALL {
            assert_eq!(class.other().other(), class);
            assert_ne!(class.other(), class);
        }
    }

    #[test]
    fn predicates_are_exclusive() {
        for class in UnitClass::ALL {
            assert_ne!(class.is_access(), class.is_compute());
        }
    }

    #[test]
    fn unit_names() {
        assert_eq!(UnitClass::Access.unit_name(), "AU");
        assert_eq!(UnitClass::Compute.unit_name(), "DU");
        assert_eq!(format!("{}", UnitClass::Compute), "DU");
    }
}
