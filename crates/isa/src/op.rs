//! Operation kinds of the idealised instruction set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation classes distinguished by the paper's idealised machines.
///
/// The paper models only the costs that matter to the latency-hiding
/// comparison: integer and address computations complete in one cycle,
/// floating-point operations take a small fixed number of cycles (divide is
/// longer), and memory operations cost one cycle plus the *memory
/// differential* unless the latency is hidden.  Branches do not appear:
/// loop-closing branches are assumed to have been removed by unrolling and
/// perfect prediction.
///
/// # Example
///
/// ```
/// use dae_isa::OpKind;
///
/// assert!(OpKind::Load.is_memory());
/// assert!(OpKind::FpMul.is_fp());
/// assert!(!OpKind::IntAlu.is_fp());
/// assert_eq!(OpKind::Store.mnemonic(), "store");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Integer / address arithmetic (adds, shifts, compares, induction
    /// updates).  Single-cycle.
    IntAlu,
    /// Floating-point addition or subtraction.
    FpAdd,
    /// Floating-point multiplication.
    FpMul,
    /// Floating-point division (or an intrinsic such as `sqrt`); the only
    /// long-latency arithmetic operation in the model.
    FpDiv,
    /// A load from the memory system.
    Load,
    /// A store to the memory system.
    Store,
}

impl OpKind {
    /// All operation kinds, in a stable order.
    ///
    /// ```
    /// assert_eq!(dae_isa::OpKind::ALL.len(), 6);
    /// ```
    pub const ALL: [OpKind; 6] = [
        OpKind::IntAlu,
        OpKind::FpAdd,
        OpKind::FpMul,
        OpKind::FpDiv,
        OpKind::Load,
        OpKind::Store,
    ];

    /// Returns `true` for loads and stores.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Returns `true` for loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, OpKind::Load)
    }

    /// Returns `true` for stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, OpKind::Store)
    }

    /// Returns `true` for floating-point arithmetic (add, mul, div).
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv)
    }

    /// Returns `true` for any non-memory (arithmetic) operation.
    #[must_use]
    pub fn is_arith(self) -> bool {
        !self.is_memory()
    }

    /// Returns `true` if the operation produces a value that later
    /// instructions can consume.
    ///
    /// Stores are the only operations without a result in this model.
    #[must_use]
    pub fn produces_value(self) -> bool {
        !self.is_store()
    }

    /// A short lower-case mnemonic used in reports and `Display` output.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::IntAlu => "int",
            OpKind::FpAdd => "fadd",
            OpKind::FpMul => "fmul",
            OpKind::FpDiv => "fdiv",
            OpKind::Load => "load",
            OpKind::Store => "store",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::IntAlu.is_memory());
        assert!(!OpKind::FpAdd.is_memory());
        assert!(!OpKind::FpMul.is_memory());
        assert!(!OpKind::FpDiv.is_memory());
    }

    #[test]
    fn load_store_split() {
        assert!(OpKind::Load.is_load());
        assert!(!OpKind::Load.is_store());
        assert!(OpKind::Store.is_store());
        assert!(!OpKind::Store.is_load());
    }

    #[test]
    fn fp_classification() {
        assert!(OpKind::FpAdd.is_fp());
        assert!(OpKind::FpMul.is_fp());
        assert!(OpKind::FpDiv.is_fp());
        assert!(!OpKind::IntAlu.is_fp());
        assert!(!OpKind::Load.is_fp());
    }

    #[test]
    fn arith_is_complement_of_memory() {
        for op in OpKind::ALL {
            assert_eq!(op.is_arith(), !op.is_memory(), "{op}");
        }
    }

    #[test]
    fn only_stores_produce_no_value() {
        for op in OpKind::ALL {
            assert_eq!(op.produces_value(), op != OpKind::Store, "{op}");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpKind::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        for op in OpKind::ALL {
            assert_eq!(format!("{op}"), op.mnemonic());
        }
    }

    #[test]
    fn ordering_is_stable() {
        let mut sorted = OpKind::ALL.to_vec();
        sorted.sort();
        assert_eq!(sorted, OpKind::ALL.to_vec());
    }
}
