//! Static kernels: the loop-body description used by workload generators.

use crate::{Address, KernelError, OpKind, UnitClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a statement within a [`Kernel`].
pub type StmtId = usize;

/// A reference to the value consumed by a statement operand.
///
/// Kernels describe one iteration of an innermost loop; dependences reach
/// either earlier statements of the same iteration, statements of an earlier
/// iteration (loop-carried), or values defined before the loop started
/// (invariants).  There are no architectural registers: the paper assumes
/// perfect renaming, so only true data dependences are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// The value produced by an earlier statement of the *same* iteration.
    Local(StmtId),
    /// The value produced by a statement of an iteration `distance` back
    /// (`distance >= 1`).  For the first `distance` iterations the value is
    /// treated as available before the loop starts.
    Carried {
        /// The producing statement.
        stmt: StmtId,
        /// How many iterations back the producer ran.
        distance: u32,
    },
    /// A loop-invariant value (available before the loop starts); the
    /// identifier only distinguishes invariants from each other.
    Invariant(u32),
}

impl Operand {
    /// Convenience constructor for a loop-carried reference at distance 1.
    #[must_use]
    pub fn carried(stmt: StmtId) -> Self {
        Operand::Carried { stmt, distance: 1 }
    }

    /// Returns `true` if the operand is available before the loop starts
    /// (invariant); such operands never create a dynamic dependence.
    #[must_use]
    pub fn is_invariant(self) -> bool {
        matches!(self, Operand::Invariant(_))
    }

    /// The statement this operand references, if any.
    #[must_use]
    pub fn referenced_stmt(self) -> Option<StmtId> {
        match self {
            Operand::Local(s) | Operand::Carried { stmt: s, .. } => Some(s),
            Operand::Invariant(_) => None,
        }
    }
}

/// How a memory statement generates its effective addresses across
/// iterations.
///
/// Only address *identity* matters to the simulators (the prefetch buffer and
/// the decoupled-memory bypass match on addresses); no data values are
/// simulated.  The important distinction for the paper's results is whether
/// an address is available from pure address arithmetic (strided patterns) or
/// depends on a loaded value (indirect), because indirect addressing forces
/// the address unit to wait on memory and erodes decoupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressPattern {
    /// `base + iteration * stride` — a fully predictable affine stream.
    Strided {
        /// Base address of the stream.
        base: Address,
        /// Per-iteration stride in bytes.
        stride: u64,
    },
    /// An affine stream that wraps within a window of `span` bytes, exposing
    /// temporal locality (used by the bypass / cache extensions).
    StridedWrapped {
        /// Base address of the stream.
        base: Address,
        /// Per-iteration stride in bytes.
        stride: u64,
        /// Size of the wrapping window in bytes (must be non-zero).
        span: u64,
    },
    /// The address depends on a *data* value (the operand named by
    /// [`AddressSpec::index_operand`]); the numeric address is a
    /// deterministic pseudo-random function of the iteration, modelling
    /// gather/scatter or pointer chasing.
    Indirect {
        /// Base address of the indexed region.
        base: Address,
        /// Size of the indexed region in bytes.
        span: u64,
    },
}

impl AddressPattern {
    /// The effective address produced by this pattern at `iteration`.
    ///
    /// For [`AddressPattern::Indirect`] the address is a deterministic hash
    /// of the iteration number so that traces are reproducible without
    /// simulating data values.
    #[must_use]
    pub fn address_at(&self, iteration: u64) -> Address {
        match *self {
            AddressPattern::Strided { base, stride } => base.wrapping_add(iteration * stride),
            AddressPattern::StridedWrapped { base, stride, span } => {
                let span = span.max(1);
                base.wrapping_add((iteration * stride) % span)
            }
            AddressPattern::Indirect { base, span } => {
                let span = span.max(1);
                // SplitMix64 finaliser: a cheap, high-quality deterministic hash.
                let mut z = iteration.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                // Keep 8-byte alignment so that distinct accesses rarely alias.
                base.wrapping_add((z % span) & !0x7)
            }
        }
    }

    /// Returns `true` if the pattern is data-dependent (indirect).
    #[must_use]
    pub fn is_indirect(&self) -> bool {
        matches!(self, AddressPattern::Indirect { .. })
    }
}

/// The address specification attached to a load or store statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressSpec {
    /// How the effective address evolves across iterations.
    pub pattern: AddressPattern,
    /// For indirect patterns, the index (into the statement's operand list)
    /// of the operand providing the data-dependent part of the address.
    ///
    /// The operand establishes the *dependence*; the numeric address comes
    /// from the pattern.  `None` for purely strided patterns.
    pub index_operand: Option<usize>,
}

impl AddressSpec {
    /// A purely strided address specification.
    #[must_use]
    pub fn strided(base: Address, stride: u64) -> Self {
        AddressSpec {
            pattern: AddressPattern::Strided { base, stride },
            index_operand: None,
        }
    }

    /// A strided specification wrapping within `span` bytes.
    #[must_use]
    pub fn strided_wrapped(base: Address, stride: u64, span: u64) -> Self {
        AddressSpec {
            pattern: AddressPattern::StridedWrapped { base, stride, span },
            index_operand: None,
        }
    }

    /// An indirect (data-dependent) specification whose index value is the
    /// statement operand at `index_operand`.
    #[must_use]
    pub fn indirect(base: Address, span: u64, index_operand: usize) -> Self {
        AddressSpec {
            pattern: AddressPattern::Indirect { base, span },
            index_operand: Some(index_operand),
        }
    }
}

/// One statement of a kernel: an operation, its intended unit class, its
/// operands and (for memory operations) its address behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// The operation performed.
    pub op: OpKind,
    /// The stream the workload generator intends this statement to run on
    /// in the decoupled machine.
    pub unit: UnitClass,
    /// The values consumed.
    pub inputs: Vec<Operand>,
    /// Address behaviour for loads and stores; `None` otherwise.
    pub address: Option<AddressSpec>,
    /// An optional human-readable label used in debugging output.
    pub label: Option<String>,
}

impl Statement {
    /// Creates a non-memory statement.
    #[must_use]
    pub fn arith(op: OpKind, unit: UnitClass, inputs: Vec<Operand>) -> Self {
        Statement {
            op,
            unit,
            inputs,
            address: None,
            label: None,
        }
    }

    /// Creates a memory statement with the given address specification.
    #[must_use]
    pub fn memory(op: OpKind, unit: UnitClass, inputs: Vec<Operand>, addr: AddressSpec) -> Self {
        Statement {
            op,
            unit,
            inputs,
            address: Some(addr),
            label: None,
        }
    }

    /// Attaches a debugging label, consuming and returning the statement.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Returns `true` if any operand is loop-carried.
    #[must_use]
    pub fn has_carried_input(&self) -> bool {
        self.inputs
            .iter()
            .any(|o| matches!(o, Operand::Carried { .. }))
    }
}

/// Aggregate statistics over a kernel's statements.
///
/// These are *static* counts (per iteration of the loop body); dynamic
/// counts are obtained by multiplying by the iteration count when the kernel
/// is expanded into a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Total statements per iteration.
    pub statements: usize,
    /// Integer / address arithmetic statements.
    pub int_ops: usize,
    /// Floating point statements (add + mul + div).
    pub fp_ops: usize,
    /// Load statements.
    pub loads: usize,
    /// Store statements.
    pub stores: usize,
    /// Loads whose address is data dependent (indirect).
    pub indirect_loads: usize,
    /// Statements tagged for the access (AU) stream.
    pub access_stmts: usize,
    /// Statements tagged for the compute (DU) stream.
    pub compute_stmts: usize,
    /// Statements with at least one loop-carried operand.
    pub carried_stmts: usize,
}

impl KernelStats {
    /// Fraction of statements that are memory operations.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        if self.statements == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.statements as f64
        }
    }

    /// Floating-point operations per load (a crude arithmetic-intensity
    /// figure).
    #[must_use]
    pub fn fp_per_load(&self) -> f64 {
        if self.loads == 0 {
            f64::INFINITY
        } else {
            self.fp_ops as f64 / self.loads as f64
        }
    }
}

/// A static kernel: one iteration of an innermost loop, described as a list
/// of dataflow statements.
///
/// Construct kernels with [`KernelBuilder`](crate::KernelBuilder); the
/// builder validates the result via [`Kernel::validate`].
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
///
/// let mut b = KernelBuilder::new("sum-reduction");
/// let i = b.induction();
/// let x = b.load_strided(&[Operand::Local(i)], 0, 8);
/// // acc += x[i]  — a loop-carried floating point recurrence.
/// let acc = b.fp_add_carried_self(&[Operand::Local(x)]);
/// let kernel = b.build()?;
/// assert!(kernel.statements()[acc].has_carried_input());
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    description: String,
    statements: Vec<Statement>,
}

impl Kernel {
    /// Creates a kernel from parts and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] describing the first structural problem
    /// found (see [`Kernel::validate`]).
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        statements: Vec<Statement>,
    ) -> Result<Self, KernelError> {
        let kernel = Kernel {
            name: name.into(),
            description: description.into(),
            statements,
        };
        kernel.validate()?;
        Ok(kernel)
    }

    /// The kernel's name (used in reports and workload registries).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A one-line description of what the kernel models.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The statements of one iteration, in program order.
    #[must_use]
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// The number of statements per iteration.
    #[must_use]
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// Returns `true` if the kernel has no statements (never true for a
    /// validated kernel).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Counts statements satisfying a predicate.
    #[must_use]
    pub fn count_of(&self, pred: impl Fn(&Statement) -> bool) -> usize {
        self.statements.iter().filter(|s| pred(s)).count()
    }

    /// Computes aggregate per-iteration statistics.
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        let mut st = KernelStats {
            statements: self.statements.len(),
            ..KernelStats::default()
        };
        for s in &self.statements {
            match s.op {
                OpKind::IntAlu => st.int_ops += 1,
                OpKind::FpAdd | OpKind::FpMul | OpKind::FpDiv => st.fp_ops += 1,
                OpKind::Load => {
                    st.loads += 1;
                    if s.address.map(|a| a.pattern.is_indirect()).unwrap_or(false) {
                        st.indirect_loads += 1;
                    }
                }
                OpKind::Store => st.stores += 1,
            }
            match s.unit {
                UnitClass::Access => st.access_stmts += 1,
                UnitClass::Compute => st.compute_stmts += 1,
            }
            if s.has_carried_input() {
                st.carried_stmts += 1;
            }
        }
        st
    }

    /// Checks the structural validity conditions described on
    /// [`KernelError`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in statement order.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.statements.is_empty() {
            return Err(KernelError::Empty);
        }
        for (id, stmt) in self.statements.iter().enumerate() {
            for operand in &stmt.inputs {
                match *operand {
                    Operand::Local(target) => {
                        if target >= self.statements.len() {
                            return Err(KernelError::UnknownStatement {
                                stmt: id,
                                referenced: target,
                            });
                        }
                        if target >= id {
                            return Err(KernelError::ForwardReference {
                                stmt: id,
                                referenced: target,
                            });
                        }
                        if !self.statements[target].op.produces_value() {
                            return Err(KernelError::ValuelessProducer {
                                stmt: id,
                                referenced: target,
                                op: self.statements[target].op,
                            });
                        }
                    }
                    Operand::Carried {
                        stmt: target,
                        distance,
                    } => {
                        if target >= self.statements.len() {
                            return Err(KernelError::UnknownStatement {
                                stmt: id,
                                referenced: target,
                            });
                        }
                        if distance == 0 {
                            return Err(KernelError::ZeroCarryDistance { stmt: id });
                        }
                        if !self.statements[target].op.produces_value() {
                            return Err(KernelError::ValuelessProducer {
                                stmt: id,
                                referenced: target,
                                op: self.statements[target].op,
                            });
                        }
                    }
                    Operand::Invariant(_) => {}
                }
            }
            match (stmt.op.is_memory(), stmt.address) {
                (true, None) => return Err(KernelError::MissingAddress { stmt: id }),
                (false, Some(_)) => {
                    return Err(KernelError::UnexpectedAddress {
                        stmt: id,
                        op: stmt.op,
                    })
                }
                (true, Some(spec)) => {
                    if let Some(idx) = spec.index_operand {
                        if idx >= stmt.inputs.len() {
                            return Err(KernelError::BadIndexOperand {
                                stmt: id,
                                index: idx,
                                operands: stmt.inputs.len(),
                            });
                        }
                    }
                }
                (false, None) => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} ({} statements)", self.name, self.len())?;
        for (id, s) in self.statements.iter().enumerate() {
            let label = s.label.as_deref().unwrap_or("");
            writeln!(
                f,
                "  [{id:3}] {:>5} {:>2} inputs={:?} {label}",
                s.op.mnemonic(),
                s.unit.unit_name(),
                s.inputs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_load(unit: UnitClass) -> Statement {
        Statement::memory(OpKind::Load, unit, vec![], AddressSpec::strided(0, 8))
    }

    #[test]
    fn empty_kernel_is_rejected() {
        assert_eq!(
            Kernel::new("empty", "", vec![]).unwrap_err(),
            KernelError::Empty
        );
    }

    #[test]
    fn forward_reference_is_rejected() {
        let stmts = vec![
            Statement::arith(OpKind::IntAlu, UnitClass::Access, vec![Operand::Local(1)]),
            simple_load(UnitClass::Access),
        ];
        assert_eq!(
            Kernel::new("fwd", "", stmts).unwrap_err(),
            KernelError::ForwardReference {
                stmt: 0,
                referenced: 1
            }
        );
    }

    #[test]
    fn self_reference_is_rejected_locally_but_fine_carried() {
        let bad = vec![Statement::arith(
            OpKind::IntAlu,
            UnitClass::Access,
            vec![Operand::Local(0)],
        )];
        assert!(matches!(
            Kernel::new("self", "", bad).unwrap_err(),
            KernelError::ForwardReference { .. }
        ));

        let good = vec![Statement::arith(
            OpKind::IntAlu,
            UnitClass::Access,
            vec![Operand::carried(0)],
        )];
        assert!(Kernel::new("induction", "", good).is_ok());
    }

    #[test]
    fn unknown_statement_is_rejected() {
        let stmts = vec![Statement::arith(
            OpKind::IntAlu,
            UnitClass::Access,
            vec![Operand::Carried {
                stmt: 7,
                distance: 1,
            }],
        )];
        assert_eq!(
            Kernel::new("unknown", "", stmts).unwrap_err(),
            KernelError::UnknownStatement {
                stmt: 0,
                referenced: 7
            }
        );
    }

    #[test]
    fn zero_carry_distance_is_rejected() {
        let stmts = vec![
            simple_load(UnitClass::Access),
            Statement::arith(
                OpKind::FpAdd,
                UnitClass::Compute,
                vec![Operand::Carried {
                    stmt: 0,
                    distance: 0,
                }],
            ),
        ];
        assert_eq!(
            Kernel::new("zero", "", stmts).unwrap_err(),
            KernelError::ZeroCarryDistance { stmt: 1 }
        );
    }

    #[test]
    fn store_results_cannot_be_consumed() {
        let stmts = vec![
            simple_load(UnitClass::Access),
            Statement::memory(
                OpKind::Store,
                UnitClass::Access,
                vec![Operand::Local(0)],
                AddressSpec::strided(64, 8),
            ),
            Statement::arith(OpKind::FpAdd, UnitClass::Compute, vec![Operand::Local(1)]),
        ];
        assert_eq!(
            Kernel::new("store-use", "", stmts).unwrap_err(),
            KernelError::ValuelessProducer {
                stmt: 2,
                referenced: 1,
                op: OpKind::Store
            }
        );
    }

    #[test]
    fn memory_statements_need_addresses() {
        let stmts = vec![Statement::arith(OpKind::Load, UnitClass::Access, vec![])];
        assert_eq!(
            Kernel::new("noaddr", "", stmts).unwrap_err(),
            KernelError::MissingAddress { stmt: 0 }
        );

        let stmts = vec![Statement::memory(
            OpKind::FpAdd,
            UnitClass::Compute,
            vec![],
            AddressSpec::strided(0, 8),
        )];
        assert_eq!(
            Kernel::new("extraaddr", "", stmts).unwrap_err(),
            KernelError::UnexpectedAddress {
                stmt: 0,
                op: OpKind::FpAdd
            }
        );
    }

    #[test]
    fn bad_index_operand_is_rejected() {
        let stmts = vec![Statement::memory(
            OpKind::Load,
            UnitClass::Access,
            vec![],
            AddressSpec::indirect(0, 4096, 2),
        )];
        assert_eq!(
            Kernel::new("badidx", "", stmts).unwrap_err(),
            KernelError::BadIndexOperand {
                stmt: 0,
                index: 2,
                operands: 0
            }
        );
    }

    #[test]
    fn stats_count_correctly() {
        let stmts = vec![
            Statement::arith(OpKind::IntAlu, UnitClass::Access, vec![Operand::carried(0)]),
            simple_load(UnitClass::Access),
            Statement::memory(
                OpKind::Load,
                UnitClass::Access,
                vec![Operand::Local(1)],
                AddressSpec::indirect(0x1000, 4096, 0),
            ),
            Statement::arith(OpKind::FpMul, UnitClass::Compute, vec![Operand::Local(2)]),
            Statement::arith(OpKind::FpAdd, UnitClass::Compute, vec![Operand::Local(3)]),
            Statement::memory(
                OpKind::Store,
                UnitClass::Access,
                vec![Operand::Local(4)],
                AddressSpec::strided(0x2000, 8),
            ),
        ];
        let kernel = Kernel::new("stats", "", stmts).unwrap();
        let st = kernel.stats();
        assert_eq!(st.statements, 6);
        assert_eq!(st.int_ops, 1);
        assert_eq!(st.fp_ops, 2);
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 1);
        assert_eq!(st.indirect_loads, 1);
        assert_eq!(st.access_stmts, 4);
        assert_eq!(st.compute_stmts, 2);
        assert_eq!(st.carried_stmts, 1);
        assert!((st.memory_fraction() - 0.5).abs() < 1e-12);
        assert!((st.fp_per_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_addresses_advance_by_stride() {
        let p = AddressPattern::Strided {
            base: 100,
            stride: 8,
        };
        assert_eq!(p.address_at(0), 100);
        assert_eq!(p.address_at(1), 108);
        assert_eq!(p.address_at(10), 180);
    }

    #[test]
    fn wrapped_addresses_stay_within_span() {
        let p = AddressPattern::StridedWrapped {
            base: 0x1000,
            stride: 16,
            span: 64,
        };
        for i in 0..1000 {
            let a = p.address_at(i);
            assert!(
                (0x1000..0x1000 + 64).contains(&a),
                "iteration {i} -> {a:#x}"
            );
        }
        // Temporal reuse: the same addresses recur.
        assert_eq!(p.address_at(0), p.address_at(4));
    }

    #[test]
    fn indirect_addresses_are_deterministic_and_in_range() {
        let p = AddressPattern::Indirect {
            base: 0x10_0000,
            span: 1 << 20,
        };
        for i in 0..1000 {
            let a = p.address_at(i);
            assert_eq!(a, p.address_at(i), "determinism at {i}");
            assert!((0x10_0000..0x10_0000 + (1 << 20)).contains(&a));
            assert_eq!(a % 8, 0, "alignment at {i}");
        }
    }

    #[test]
    fn display_lists_every_statement() {
        let stmts = vec![
            simple_load(UnitClass::Access),
            Statement::arith(OpKind::FpAdd, UnitClass::Compute, vec![Operand::Local(0)])
                .with_label("acc"),
        ];
        let kernel = Kernel::new("disp", "two statements", stmts).unwrap();
        let text = format!("{kernel}");
        assert!(text.contains("load"));
        assert!(text.contains("fadd"));
        assert!(text.contains("acc"));
    }
}
