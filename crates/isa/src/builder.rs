//! A small DSL for constructing kernels programmatically.

use crate::{AddressSpec, Kernel, KernelError, OpKind, Operand, Statement, StmtId, UnitClass};

/// Incrementally builds a [`Kernel`].
///
/// Every statement-adding method returns the new statement's [`StmtId`] so
/// that later statements can reference it through [`Operand::Local`] or
/// [`Operand::Carried`].  The terminal [`KernelBuilder::build`] method
/// validates the kernel.
///
/// The builder chooses the conventional unit class for each helper (integer
/// and memory statements default to the access stream, floating point to the
/// compute stream), matching how the paper's compiler partitions code; the
/// `*_on` variants override the class for the rarer cases (e.g. integer data
/// manipulation on the DU).
///
/// # Example
///
/// ```
/// use dae_isa::{KernelBuilder, Operand};
///
/// // s[i] = a[i] * b[i]; acc += s[i]
/// let mut b = KernelBuilder::new("dot-product");
/// b.describe("inner product with a floating point reduction");
/// let i = b.induction();
/// let a = b.load_strided(&[Operand::Local(i)], 0x0000, 8);
/// let bb = b.load_strided(&[Operand::Local(i)], 0x4000, 8);
/// let prod = b.fp_mul(&[Operand::Local(a), Operand::Local(bb)]);
/// let acc = b.fp_add_carried_self(&[Operand::Local(prod)]);
/// let kernel = b.build()?;
/// assert_eq!(kernel.name(), "dot-product");
/// assert_eq!(kernel.len(), 5);
/// assert!(kernel.statements()[acc].has_carried_input());
/// # Ok::<(), dae_isa::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    description: String,
    statements: Vec<Statement>,
}

impl KernelBuilder {
    /// Starts a new, empty kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            description: String::new(),
            statements: Vec::new(),
        }
    }

    /// Sets the kernel's one-line description.
    pub fn describe(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = description.into();
        self
    }

    /// The number of statements added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// Returns `true` if no statements have been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Adds an arbitrary pre-constructed statement.
    pub fn push(&mut self, stmt: Statement) -> StmtId {
        let id = self.statements.len();
        self.statements.push(stmt);
        id
    }

    /// Adds an induction-variable update: a 1-cycle integer statement on the
    /// access stream whose only input is its own value from the previous
    /// iteration (`i = i + 1`).
    pub fn induction(&mut self) -> StmtId {
        let id = self.statements.len();
        self.statements.push(
            Statement::arith(
                OpKind::IntAlu,
                UnitClass::Access,
                vec![Operand::Carried {
                    stmt: id,
                    distance: 1,
                }],
            )
            .with_label("induction"),
        );
        id
    }

    /// Adds an integer / address arithmetic statement on the access stream.
    pub fn int(&mut self, inputs: &[Operand]) -> StmtId {
        self.int_on(UnitClass::Access, inputs)
    }

    /// Adds an integer statement on the given stream.
    pub fn int_on(&mut self, unit: UnitClass, inputs: &[Operand]) -> StmtId {
        self.push(Statement::arith(OpKind::IntAlu, unit, inputs.to_vec()))
    }

    /// Adds a floating point add/subtract on the compute stream.
    pub fn fp_add(&mut self, inputs: &[Operand]) -> StmtId {
        self.push(Statement::arith(
            OpKind::FpAdd,
            UnitClass::Compute,
            inputs.to_vec(),
        ))
    }

    /// Adds a floating point multiply on the compute stream.
    pub fn fp_mul(&mut self, inputs: &[Operand]) -> StmtId {
        self.push(Statement::arith(
            OpKind::FpMul,
            UnitClass::Compute,
            inputs.to_vec(),
        ))
    }

    /// Adds a floating point divide (or intrinsic) on the compute stream.
    pub fn fp_div(&mut self, inputs: &[Operand]) -> StmtId {
        self.push(Statement::arith(
            OpKind::FpDiv,
            UnitClass::Compute,
            inputs.to_vec(),
        ))
    }

    /// Adds a floating point add that also consumes its own value from the
    /// previous iteration — the canonical reduction / recurrence statement
    /// (`acc = acc + x`).
    pub fn fp_add_carried_self(&mut self, inputs: &[Operand]) -> StmtId {
        let id = self.statements.len();
        let mut all = inputs.to_vec();
        all.push(Operand::Carried {
            stmt: id,
            distance: 1,
        });
        self.statements.push(
            Statement::arith(OpKind::FpAdd, UnitClass::Compute, all).with_label("recurrence"),
        );
        id
    }

    /// Adds a floating point multiply that also consumes its own value from
    /// the previous iteration.
    pub fn fp_mul_carried_self(&mut self, inputs: &[Operand]) -> StmtId {
        let id = self.statements.len();
        let mut all = inputs.to_vec();
        all.push(Operand::Carried {
            stmt: id,
            distance: 1,
        });
        self.statements.push(
            Statement::arith(OpKind::FpMul, UnitClass::Compute, all).with_label("recurrence"),
        );
        id
    }

    /// Adds an integer statement (on the access stream) that consumes its own
    /// value from `distance` iterations back — used for serial integer
    /// recurrences such as linked-list style index updates.
    pub fn int_carried_self(&mut self, inputs: &[Operand], distance: u32) -> StmtId {
        let id = self.statements.len();
        let mut all = inputs.to_vec();
        all.push(Operand::Carried { stmt: id, distance });
        self.statements
            .push(Statement::arith(OpKind::IntAlu, UnitClass::Access, all));
        id
    }

    /// Adds a load with a strided (affine) address stream on the access
    /// stream.
    pub fn load_strided(&mut self, inputs: &[Operand], base: u64, stride: u64) -> StmtId {
        self.push(Statement::memory(
            OpKind::Load,
            UnitClass::Access,
            inputs.to_vec(),
            AddressSpec::strided(base, stride),
        ))
    }

    /// Adds a load whose strided address stream wraps within `span` bytes
    /// (temporal locality for the bypass / cache extensions).
    pub fn load_wrapped(
        &mut self,
        inputs: &[Operand],
        base: u64,
        stride: u64,
        span: u64,
    ) -> StmtId {
        self.push(Statement::memory(
            OpKind::Load,
            UnitClass::Access,
            inputs.to_vec(),
            AddressSpec::strided_wrapped(base, stride, span),
        ))
    }

    /// Adds an indirect (data-dependent) load.  `index_operand` is the index
    /// into `inputs` of the value providing the data-dependent part of the
    /// address (typically a previously loaded index).
    pub fn load_indirect(
        &mut self,
        inputs: &[Operand],
        base: u64,
        span: u64,
        index_operand: usize,
    ) -> StmtId {
        self.push(Statement::memory(
            OpKind::Load,
            UnitClass::Access,
            inputs.to_vec(),
            AddressSpec::indirect(base, span, index_operand),
        ))
    }

    /// Adds a store with a strided address stream.
    pub fn store_strided(&mut self, inputs: &[Operand], base: u64, stride: u64) -> StmtId {
        self.push(Statement::memory(
            OpKind::Store,
            UnitClass::Access,
            inputs.to_vec(),
            AddressSpec::strided(base, stride),
        ))
    }

    /// Adds an indirect (scatter) store.
    pub fn store_indirect(
        &mut self,
        inputs: &[Operand],
        base: u64,
        span: u64,
        index_operand: usize,
    ) -> StmtId {
        self.push(Statement::memory(
            OpKind::Store,
            UnitClass::Access,
            inputs.to_vec(),
            AddressSpec::indirect(base, span, index_operand),
        ))
    }

    /// Attaches a label to the most recently added statement.
    ///
    /// # Panics
    ///
    /// Panics if no statement has been added yet.
    pub fn label_last(&mut self, label: impl Into<String>) -> &mut Self {
        let stmt = self
            .statements
            .last_mut()
            .expect("label_last called on an empty builder");
        stmt.label = Some(label.into());
        self
    }

    /// Finishes the kernel and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the kernel is structurally invalid.
    pub fn build(self) -> Result<Kernel, KernelError> {
        Kernel::new(self.name, self.description, self.statements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressPattern;

    #[test]
    fn builder_produces_expected_statement_order() {
        let mut b = KernelBuilder::new("order");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let y = b.fp_mul(&[Operand::Local(x), Operand::Invariant(0)]);
        let s = b.store_strided(&[Operand::Local(y), Operand::Local(i)], 0x100, 8);
        assert_eq!((i, x, y, s), (0, 1, 2, 3));
        let k = b.build().unwrap();
        assert_eq!(k.len(), 4);
        assert_eq!(k.statements()[0].op, OpKind::IntAlu);
        assert_eq!(k.statements()[1].op, OpKind::Load);
        assert_eq!(k.statements()[2].op, OpKind::FpMul);
        assert_eq!(k.statements()[3].op, OpKind::Store);
    }

    #[test]
    fn induction_carries_itself() {
        let mut b = KernelBuilder::new("ind");
        let i = b.induction();
        let k = b.build().unwrap();
        assert_eq!(
            k.statements()[i].inputs,
            vec![Operand::Carried {
                stmt: i,
                distance: 1
            }]
        );
        assert_eq!(k.statements()[i].unit, UnitClass::Access);
    }

    #[test]
    fn recurrence_helpers_reference_self() {
        let mut b = KernelBuilder::new("rec");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let acc = b.fp_add_carried_self(&[Operand::Local(x)]);
        let prod = b.fp_mul_carried_self(&[Operand::Local(x)]);
        let chase = b.int_carried_self(&[], 2);
        let k = b.build().unwrap();
        for (id, dist) in [(acc, 1), (prod, 1), (chase, 2)] {
            let carried = k.statements()[id]
                .inputs
                .iter()
                .find_map(|o| match *o {
                    Operand::Carried { stmt, distance } if stmt == id => Some(distance),
                    _ => None,
                })
                .expect("self-carried operand present");
            assert_eq!(carried, dist);
        }
    }

    #[test]
    fn indirect_load_records_index_operand() {
        let mut b = KernelBuilder::new("gather");
        let i = b.induction();
        let idx = b.load_strided(&[Operand::Local(i)], 0, 8);
        let g = b.load_indirect(&[Operand::Local(idx)], 0x10_0000, 1 << 16, 0);
        let k = b.build().unwrap();
        let spec = k.statements()[g].address.unwrap();
        assert_eq!(spec.index_operand, Some(0));
        assert!(matches!(spec.pattern, AddressPattern::Indirect { .. }));
    }

    #[test]
    fn fp_defaults_to_compute_and_int_to_access() {
        let mut b = KernelBuilder::new("units");
        let i = b.induction();
        let x = b.load_strided(&[Operand::Local(i)], 0, 8);
        let f = b.fp_add(&[Operand::Local(x)]);
        let d = b.int_on(UnitClass::Compute, &[Operand::Local(f)]);
        let k = b.build().unwrap();
        assert_eq!(k.statements()[i].unit, UnitClass::Access);
        assert_eq!(k.statements()[x].unit, UnitClass::Access);
        assert_eq!(k.statements()[f].unit, UnitClass::Compute);
        assert_eq!(k.statements()[d].unit, UnitClass::Compute);
    }

    #[test]
    fn label_last_attaches_label() {
        let mut b = KernelBuilder::new("labels");
        b.induction();
        b.label_last("i");
        let k = b.build().unwrap();
        assert_eq!(k.statements()[0].label.as_deref(), Some("i"));
    }

    #[test]
    fn empty_builder_fails_validation() {
        let b = KernelBuilder::new("empty");
        assert!(b.is_empty());
        assert_eq!(b.build().unwrap_err(), KernelError::Empty);
    }

    #[test]
    fn describe_sets_description() {
        let mut b = KernelBuilder::new("desc");
        b.describe("a description");
        b.induction();
        let k = b.build().unwrap();
        assert_eq!(k.description(), "a description");
    }
}
