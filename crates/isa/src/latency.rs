//! Functional-unit latencies of the idealised machine.

use crate::{Cycle, OpKind};
use serde::{Deserialize, Serialize};

/// Fixed execution latencies for arithmetic operations.
///
/// The paper gives integer and address computations a one-cycle cost and
/// floating point operations a small fixed cost (divide and intrinsics are
/// the long exceptions).  Memory operation timing is *not* part of this
/// model: loads and stores always spend one cycle in a functional unit and
/// their memory cost (the memory differential) is charged by the memory
/// models in `dae-mem`.
///
/// # Example
///
/// ```
/// use dae_isa::{LatencyModel, OpKind};
///
/// let lat = LatencyModel::paper_default();
/// assert_eq!(lat.latency_of(OpKind::IntAlu), 1);
/// assert_eq!(lat.latency_of(OpKind::FpAdd), 2);
/// assert!(lat.latency_of(OpKind::FpDiv) > lat.latency_of(OpKind::FpMul));
/// assert_eq!(lat.latency_of(OpKind::Load), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Latency of integer / address arithmetic.
    pub int_alu: Cycle,
    /// Latency of floating-point add/subtract.
    pub fp_add: Cycle,
    /// Latency of floating-point multiply.
    pub fp_mul: Cycle,
    /// Latency of floating-point divide and intrinsics.
    pub fp_div: Cycle,
    /// Occupancy of the address-generation stage of a memory operation.
    ///
    /// This is the single cycle a load or store spends in a functional unit
    /// before it is handed to the memory system; the memory differential is
    /// charged separately by the machine models.
    pub mem_issue: Cycle,
}

impl LatencyModel {
    /// The latencies stated (or implied) by the paper: 1-cycle integer ops,
    /// 2-cycle floating point adds and multiplies, long divides.
    #[must_use]
    pub fn paper_default() -> Self {
        LatencyModel {
            int_alu: 1,
            fp_add: 2,
            fp_mul: 2,
            fp_div: 8,
            mem_issue: 1,
        }
    }

    /// A fully uniform single-cycle model, useful in unit tests where the
    /// arithmetic latencies would only obscure the property being checked.
    #[must_use]
    pub fn unit() -> Self {
        LatencyModel {
            int_alu: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 1,
            mem_issue: 1,
        }
    }

    /// The execution latency of `op` (excluding any memory-system cost).
    #[must_use]
    pub fn latency_of(&self, op: OpKind) -> Cycle {
        match op {
            OpKind::IntAlu => self.int_alu,
            OpKind::FpAdd => self.fp_add,
            OpKind::FpMul => self.fp_mul,
            OpKind::FpDiv => self.fp_div,
            OpKind::Load | OpKind::Store => self.mem_issue,
        }
    }

    /// The largest arithmetic latency in the model.
    #[must_use]
    pub fn max_arith_latency(&self) -> Cycle {
        self.int_alu
            .max(self.fp_add)
            .max(self.fp_mul)
            .max(self.fp_div)
    }

    /// Validates that every latency is at least one cycle.
    ///
    /// # Errors
    ///
    /// Returns the offending operation kind if any latency is zero.
    pub fn validate(&self) -> Result<(), OpKind> {
        for op in OpKind::ALL {
            if self.latency_of(op) == 0 {
                return Err(op);
            }
        }
        Ok(())
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let lat = LatencyModel::default();
        assert_eq!(lat, LatencyModel::paper_default());
        assert_eq!(lat.latency_of(OpKind::IntAlu), 1);
        assert_eq!(lat.latency_of(OpKind::FpAdd), 2);
        assert_eq!(lat.latency_of(OpKind::FpMul), 2);
        assert_eq!(lat.latency_of(OpKind::Load), 1);
        assert_eq!(lat.latency_of(OpKind::Store), 1);
    }

    #[test]
    fn unit_model_is_all_ones() {
        let lat = LatencyModel::unit();
        for op in OpKind::ALL {
            assert_eq!(lat.latency_of(op), 1, "{op}");
        }
    }

    #[test]
    fn divide_is_the_long_pole() {
        let lat = LatencyModel::paper_default();
        assert_eq!(lat.max_arith_latency(), lat.fp_div);
    }

    #[test]
    fn validation_rejects_zero_latency() {
        let mut lat = LatencyModel::paper_default();
        assert!(lat.validate().is_ok());
        lat.fp_mul = 0;
        assert_eq!(lat.validate(), Err(OpKind::FpMul));
    }
}
