//! Property-based tests of the kernel model: any kernel assembled through
//! the builder's safe operations validates, address patterns respect their
//! declared behaviour, and validation catches every class of structural
//! error regardless of where it occurs.

use dae_isa::{
    AddressPattern, AddressSpec, Kernel, KernelBuilder, KernelError, LatencyModel, OpKind, Operand,
    Statement, UnitClass,
};
use proptest::prelude::*;

/// A recipe for one builder step, chosen so that any sequence of steps
/// produces a structurally valid kernel.
#[derive(Debug, Clone)]
enum Step {
    Int { uses_prev: bool },
    FpAdd { uses_prev: bool },
    FpMulCarried,
    LoadStrided { base: u64, stride: u64 },
    LoadIndirectFromPrev { base: u64, span: u64 },
    StorePrev { base: u64, stride: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<bool>().prop_map(|uses_prev| Step::Int { uses_prev }),
        any::<bool>().prop_map(|uses_prev| Step::FpAdd { uses_prev }),
        Just(Step::FpMulCarried),
        (0u64..1 << 30, 1u64..256).prop_map(|(base, stride)| Step::LoadStrided { base, stride }),
        (0u64..1 << 30, 64u64..1 << 20)
            .prop_map(|(base, span)| Step::LoadIndirectFromPrev { base, span }),
        (0u64..1 << 30, 1u64..256).prop_map(|(base, stride)| Step::StorePrev { base, stride }),
    ]
}

fn build(steps: &[Step]) -> Kernel {
    let mut b = KernelBuilder::new("proptest-kernel");
    let i = b.induction();
    // `last_value` always names a statement that produces a value.
    let mut last_value = i;
    for step in steps {
        match *step {
            Step::Int { uses_prev } => {
                let inputs = if uses_prev {
                    vec![Operand::Local(last_value)]
                } else {
                    vec![Operand::Invariant(0)]
                };
                last_value = b.int(&inputs);
            }
            Step::FpAdd { uses_prev } => {
                let inputs = if uses_prev {
                    vec![Operand::Local(last_value)]
                } else {
                    vec![Operand::Invariant(1)]
                };
                last_value = b.fp_add(&inputs);
            }
            Step::FpMulCarried => {
                last_value = b.fp_mul_carried_self(&[Operand::Local(last_value)]);
            }
            Step::LoadStrided { base, stride } => {
                last_value = b.load_strided(&[Operand::Local(i)], base, stride);
            }
            Step::LoadIndirectFromPrev { base, span } => {
                last_value = b.load_indirect(&[Operand::Local(last_value)], base, span, 0);
            }
            Step::StorePrev { base, stride } => {
                b.store_strided(
                    &[Operand::Local(last_value), Operand::Local(i)],
                    base,
                    stride,
                );
            }
        }
    }
    b.build().expect("builder-assembled kernels are valid")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any sequence of safe builder steps yields a kernel that validates and
    /// whose statistics are internally consistent.
    #[test]
    fn builder_sequences_always_validate(steps in proptest::collection::vec(step_strategy(), 0..40)) {
        let kernel = build(&steps);
        prop_assert!(kernel.validate().is_ok());
        let stats = kernel.stats();
        prop_assert_eq!(stats.statements, kernel.len());
        prop_assert_eq!(
            stats.statements,
            stats.int_ops + stats.fp_ops + stats.loads + stats.stores
        );
        prop_assert_eq!(stats.access_stmts + stats.compute_stmts, stats.statements);
        prop_assert!(stats.indirect_loads <= stats.loads);
        prop_assert!(stats.memory_fraction() >= 0.0 && stats.memory_fraction() <= 1.0);
    }

    /// Strided patterns advance by exactly the stride; wrapped and indirect
    /// patterns never leave their span and are pure functions of the
    /// iteration number.
    #[test]
    fn address_patterns_respect_their_contracts(
        base in 0u64..(1 << 44),
        stride in 1u64..1024,
        span in 8u64..(1 << 22),
        a in 0u64..1_000_000u64,
        b in 0u64..1_000_000u64,
    ) {
        let strided = AddressPattern::Strided { base, stride };
        prop_assert_eq!(
            strided.address_at(a + 1).wrapping_sub(strided.address_at(a)),
            stride
        );

        for pattern in [
            AddressPattern::StridedWrapped { base, stride, span },
            AddressPattern::Indirect { base, span },
        ] {
            let addr = pattern.address_at(a);
            prop_assert!(addr >= base && addr < base + span);
            prop_assert_eq!(addr, pattern.address_at(a));
            if a != b && matches!(pattern, AddressPattern::StridedWrapped { .. }) {
                // Wrapped patterns repeat with period span/gcd; just check
                // both evaluations stay in range.
                prop_assert!(pattern.address_at(b) < base + span);
            }
        }
    }

    /// Validation rejects a forward reference wherever it appears in an
    /// otherwise valid kernel.
    #[test]
    fn forward_references_are_always_caught(
        steps in proptest::collection::vec(step_strategy(), 1..20),
        offset in 1usize..10,
    ) {
        let kernel = build(&steps);
        let mut statements: Vec<Statement> = kernel.statements().to_vec();
        let position = statements.len() - 1;
        statements.push(Statement::arith(
            OpKind::IntAlu,
            UnitClass::Access,
            vec![Operand::Local(position + offset)],
        ));
        let err = Kernel::new("broken", "", statements).unwrap_err();
        let caught = matches!(
            err,
            KernelError::ForwardReference { .. } | KernelError::UnknownStatement { .. }
        );
        prop_assert!(caught, "unexpected error: {}", err);
    }

    /// Validation rejects memory statements without addresses and arithmetic
    /// statements with addresses, wherever they appear.
    #[test]
    fn address_spec_mismatches_are_always_caught(steps in proptest::collection::vec(step_strategy(), 0..15)) {
        let kernel = build(&steps);

        let mut missing = kernel.statements().to_vec();
        missing.push(Statement::arith(OpKind::Load, UnitClass::Access, vec![]));
        let missing_err = Kernel::new("missing", "", missing).unwrap_err();
        let missing_caught = matches!(missing_err, KernelError::MissingAddress { .. });
        prop_assert!(missing_caught, "unexpected error: {}", missing_err);

        let mut unexpected = kernel.statements().to_vec();
        unexpected.push(Statement::memory(
            OpKind::FpMul,
            UnitClass::Compute,
            vec![],
            AddressSpec::strided(0, 8),
        ));
        let unexpected_err = Kernel::new("unexpected", "", unexpected).unwrap_err();
        let unexpected_caught = matches!(unexpected_err, KernelError::UnexpectedAddress { .. });
        prop_assert!(unexpected_caught, "unexpected error: {}", unexpected_err);
    }

    /// Latency models validate exactly when every latency is non-zero.
    #[test]
    fn latency_model_validation(int_alu in 0u64..4, fp_add in 0u64..4, fp_mul in 0u64..4, fp_div in 0u64..12, mem in 0u64..3) {
        let model = LatencyModel { int_alu, fp_add, fp_mul, fp_div, mem_issue: mem };
        let all_nonzero = int_alu > 0 && fp_add > 0 && fp_mul > 0 && fp_div > 0 && mem > 0;
        prop_assert_eq!(model.validate().is_ok(), all_nonzero);
        if all_nonzero {
            prop_assert!(model.max_arith_latency() >= int_alu.max(fp_add).max(fp_mul).max(fp_div));
        }
    }
}
