//! Quickstart: the paper's core comparison on one workload.
//!
//! Builds the MDG workload model, runs the access decoupled machine (DM),
//! the single-window superscalar (SWSM) and the scalar reference at a
//! realistic window size, and prints the headline numbers: execution time,
//! speedup, latency-hiding effectiveness and the DM's measured slippage.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use dae::machines::{DecoupledMachine, DmConfig, SuperscalarMachine, SwsmConfig};
use dae::{scalar_cycles, speedup, PerfectProgram};

fn main() {
    let window = 32;
    let memory_differential = 60;
    let workload = PerfectProgram::Mdg.workload();
    let trace = workload.trace(1000);

    println!("workload : {workload}");
    println!(
        "trace    : {} instructions ({} loads, {} stores)",
        trace.len(),
        trace.stats().loads,
        trace.stats().stores
    );
    println!(
        "machine  : {window}-entry windows, memory differential {memory_differential} cycles\n"
    );

    // The scalar reference defines the common speedup denominator.
    let reference = scalar_cycles(&trace, memory_differential);

    // The access decoupled machine.
    let dm_cfg = DmConfig::paper(window, memory_differential);
    let dm = DecoupledMachine::new(dm_cfg).run(&trace);
    let dm_perfect = DecoupledMachine::new(DmConfig::paper(window, 0)).run(&trace);

    // The single-window superscalar with hybrid prefetching.
    let swsm_cfg = SwsmConfig::paper(window, memory_differential);
    let swsm = SuperscalarMachine::new(swsm_cfg).run(&trace);
    let swsm_perfect = SuperscalarMachine::new(SwsmConfig::paper(window, 0)).run(&trace);

    println!("scalar reference : {reference} cycles");
    println!(
        "DM               : {} cycles  (speedup {:.1}x, LHE {:.3})",
        dm.cycles(),
        speedup(reference, dm.cycles()),
        dm_perfect.cycles() as f64 / dm.cycles() as f64,
    );
    println!(
        "SWSM             : {} cycles  (speedup {:.1}x, LHE {:.3})",
        swsm.cycles(),
        speedup(reference, swsm.cycles()),
        swsm_perfect.cycles() as f64 / swsm.cycles() as f64,
    );

    println!("\n-- decoupled machine internals --");
    println!(
        "AU issue utilisation {:.2}, DU issue utilisation {:.2}",
        dm.au.issue_utilization(),
        dm.du.issue_utilization()
    );
    println!(
        "slippage: avg {:.0} / max {} architectural instructions (effective single window avg {:.0}, max {})",
        dm.esw.avg_slip, dm.esw.max_slip, dm.esw.avg_esw, dm.esw.max_esw
    );
    println!(
        "partition: {} AU + {} DU instructions, {} AU self loads, {} loss-of-decoupling copies",
        dm.partition.au_instructions,
        dm.partition.du_instructions,
        dm.partition.au_self_loads,
        dm.partition.copies_du_to_au
    );
    println!(
        "decoupled memory: {} load requests, peak occupancy {}, values buffered {:.1} cycles on average",
        dm.memory.load_requests,
        dm.memory.peak_occupancy,
        dm.memory.buffered_cycles as f64 / dm.memory.consumed.max(1) as f64
    );

    println!("\n-- superscalar internals --");
    println!(
        "issue utilisation {:.2}, window pressure {:.2}",
        swsm.unit.issue_utilization(),
        swsm.unit.window_pressure()
    );
    println!(
        "prefetch buffer: {} prefetches, {} hits, {} misses, peak occupancy {}",
        swsm.buffer.prefetches, swsm.buffer.hits, swsm.buffer.misses, swsm.buffer.peak_occupancy
    );

    println!(
        "\nConclusion: at a {window}-entry window and MD = {memory_differential}, the DM runs {:.1}x faster than the SWSM.",
        swsm.cycles() as f64 / dm.cycles() as f64
    );
}
