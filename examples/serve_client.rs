//! A client driving `dae-serve` end to end: starts the server on a
//! loopback socket, submits interleaved sweep requests from two
//! connections (a PERFECT trace and an inline daxpy kernel), repeats a
//! grid to show the sweep-result cache answering it, and verifies every
//! streamed line against an in-process `SweepSession`.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_client
//! ```
//! The wire format is specified in `docs/PROTOCOL.md`.

use dae::core::SweepSession;
use dae_serve::{parse_request, parse_response, serve_tcp, Request, Response, SweepServer};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Reads responses until `done` lines have arrived for every id in `ids`,
/// printing the transcript and returning per-id `(index → cycles, cached)`.
fn read_all(
    reader: &mut impl BufRead,
    ids: &[&str],
) -> HashMap<String, (HashMap<usize, u64>, u64)> {
    let mut collected: HashMap<String, (HashMap<usize, u64>, u64)> = ids
        .iter()
        .map(|&id| (id.to_string(), Default::default()))
        .collect();
    let mut outstanding = ids.len();
    while outstanding > 0 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read response") > 0);
        let line = line.trim_end();
        println!("  < {line}");
        match parse_response(line).expect("well-formed response") {
            Response::Point {
                id, index, cycles, ..
            } => {
                collected
                    .get_mut(&id)
                    .expect("known id")
                    .0
                    .insert(index, cycles);
            }
            Response::Done {
                id,
                points,
                delivered,
                dropped,
                cached,
                status,
                ..
            } => {
                assert_eq!(delivered, points, "nothing was cancelled here");
                assert_eq!(dropped, 0);
                assert_eq!(status, dae_serve::DoneStatus::Ok);
                collected.get_mut(&id).expect("known id").1 = cached;
                outstanding -= 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    collected
}

/// The in-process oracle for one request line.
fn oracle(line: &str) -> Vec<u64> {
    let Ok(Request::Sweep(request)) = parse_request(line) else {
        panic!("not a sweep request: {line}");
    };
    let mut session = SweepSession::new();
    let trace = request
        .source
        .trace(request.iterations)
        .expect("source expands");
    let id = session.pin_trace(&trace);
    session.sweep_multi(&request.points(id))
}

fn verify(line: &str, got: &HashMap<usize, u64>) {
    let expected = oracle(line);
    assert_eq!(got.len(), expected.len(), "{line}");
    for (index, cycles) in expected.iter().enumerate() {
        assert_eq!(got[&index], *cycles, "point {index} of '{line}'");
    }
}

fn main() {
    let trfd = "sweep id=trfd trace=TRFD iterations=200 machines=dm,swsm windows=8,32 mds=0,60 mode=stream";
    let daxpy = "sweep id=daxpy kernel=i;ld:%0;ld:%0;mul:%1,$0;add:%3,%2;st:%4,%0 iterations=200 machines=dm,swsm,scalar windows=16 mds=0,60 mode=batch";
    let repeat = "sweep id=again trace=TRFD iterations=200 machines=dm,swsm windows=8,32 mds=0,60 mode=stream";

    // The server half: the shared session behind a loopback listener.
    let server = Arc::new(SweepServer::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_tcp(&server, &listener);
        });
    }
    println!("server listening on {addr}");

    // Two clients submit concurrently; their grids interleave on the
    // shared session and every response line is tagged.
    let mut alice = TcpStream::connect(addr).expect("connect");
    let mut bob = TcpStream::connect(addr).expect("connect");
    let mut alice_reader = BufReader::new(alice.try_clone().expect("clone"));
    let mut bob_reader = BufReader::new(bob.try_clone().expect("clone"));

    println!("\nalice > {trfd}");
    writeln!(alice, "{trfd}").unwrap();
    println!("bob   > {daxpy}");
    writeln!(bob, "{daxpy}").unwrap();

    let from_alice = read_all(&mut alice_reader, &["trfd"]);
    let from_bob = read_all(&mut bob_reader, &["daxpy"]);
    verify(trfd, &from_alice["trfd"].0);
    verify(daxpy, &from_bob["daxpy"].0);

    // The same grid again (fresh request id): answered from the cache.
    println!("\nalice > {repeat}");
    writeln!(alice, "{repeat}").unwrap();
    let warm = read_all(&mut alice_reader, &["again"]);
    verify(repeat, &warm["again"].0);
    let (points, cached) = (&warm["again"].0, warm["again"].1);
    assert_eq!(
        cached,
        points.len() as u64,
        "the repeated grid must be answered entirely from the cache"
    );

    println!("\nalice > stats");
    writeln!(alice, "stats").unwrap();
    let mut line = String::new();
    alice_reader.read_line(&mut line).expect("stats reply");
    println!("  < {}", line.trim_end());
    assert!(matches!(
        parse_response(line.trim_end()),
        Ok(Response::Stats { .. })
    ));

    println!(
        "\nOK: {} interleaved points verified bit-for-bit against an in-process \
         session; the repeated grid hit the cache on all {} points.",
        oracle(trfd).len() + oracle(daxpy).len() + oracle(repeat).len(),
        points.len()
    );
}
