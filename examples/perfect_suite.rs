//! The full PERFECT suite: Table 1 of the paper plus the §5 window-ratio
//! claim for all seven workload models.
//!
//! Run with:
//! ```text
//! cargo run --release --example perfect_suite
//! ```

use dae::core::{table1_in, window_ratio_claim_in, ExperimentConfig, SweepSession};
use dae::workloads::suite;

fn main() {
    let config = ExperimentConfig {
        iterations: 800,
        dm_windows: vec![8, 16, 32, 64, 128, 256],
        ..ExperimentConfig::quick()
    };

    println!("The seven PERFECT Club workload models:\n");
    for workload in suite() {
        let stats = workload.kernel().stats();
        println!(
            "  {:<8} {:2} stmts/iter  {:2} loads  {:2} fp  band {:>8}   {}",
            workload.name(),
            stats.statements,
            stats.loads,
            stats.fp_ops,
            workload
                .meta()
                .expected_band
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
            workload.meta().description
        );
    }
    println!();

    // One persistent session: the seven lowerings pinned by Table 1 are
    // reused verbatim by the window-ratio claim below.
    let mut session = SweepSession::new();

    let table = table1_in(&mut session, &config, 60);
    println!("{table}");
    println!("(Three bands are visible: TRFD/ADM/FLO52Q hide the latency well, DYFESM/QCD/MDG moderately, TRACK poorly.)\n");

    let claim = window_ratio_claim_in(&mut session, &config, 32, 60);
    println!("{claim}");
    if let Some((min, max)) = claim.range() {
        println!(
            "\nAcross the suite the SWSM needs a {min:.1}x to {max:.1}x larger window than the DM for equal performance at MD = 60."
        );
    }
}
