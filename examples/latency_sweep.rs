//! Latency sweep: how both machines degrade as main memory gets further
//! away.
//!
//! Sweeps the memory differential from 0 to 100 cycles for a fixed window
//! size and prints the speedup of the DM and the SWSM over the scalar
//! reference, together with the fraction of the latency each machine hides.
//! This is the experiment behind the paper's observation that the DM's
//! advantage *grows* with the memory differential.
//!
//! Run with:
//! ```text
//! cargo run --release --example latency_sweep [PROGRAM] [WINDOW]
//! ```
//! where `PROGRAM` is one of the PERFECT names (default FLO52Q) and
//! `WINDOW` is the per-unit window size (default 32).

use dae::core::TextTable;
use dae::{dm_cycles, scalar_cycles, speedup, swsm_cycles, PerfectProgram, WindowSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let program = args
        .next()
        .and_then(|name| PerfectProgram::from_name(&name))
        .unwrap_or(PerfectProgram::Flo52q);
    let window: usize = args.next().and_then(|w| w.parse().ok()).unwrap_or(32);

    let trace = program.workload().trace(1000);
    let perfect_dm = dm_cycles(&trace, WindowSpec::Entries(window), 0);
    let perfect_swsm = swsm_cycles(&trace, WindowSpec::Entries(window), 0);

    println!(
        "Memory-differential sweep for {program} with {window}-entry windows ({} instructions)\n",
        trace.len()
    );

    let mut table = TextTable::new(vec![
        "md".into(),
        "scalar cycles".into(),
        "DM speedup".into(),
        "SWSM speedup".into(),
        "DM LHE".into(),
        "SWSM LHE".into(),
        "DM / SWSM".into(),
    ]);

    for md in [0u64, 10, 20, 30, 40, 50, 60, 80, 100] {
        let reference = scalar_cycles(&trace, md);
        let dm = dm_cycles(&trace, WindowSpec::Entries(window), md);
        let swsm = swsm_cycles(&trace, WindowSpec::Entries(window), md);
        table.push_row(vec![
            md.to_string(),
            reference.to_string(),
            format!("{:.1}", speedup(reference, dm)),
            format!("{:.1}", speedup(reference, swsm)),
            format!("{:.3}", perfect_dm as f64 / dm as f64),
            format!("{:.3}", perfect_swsm as f64 / swsm as f64),
            format!("{:.2}", swsm as f64 / dm as f64),
        ]);
    }

    println!("{table}");
    println!(
        "(LHE = execution time at MD=0 divided by execution time at the given MD, per machine.)"
    );
}
