//! Issue-logic complexity: turning the measured equivalent window ratios
//! into the paper's "simpler window logic" argument.
//!
//! The paper cites Palacharla, Jouppi & Smith (ISCA'97): issue-logic delay
//! grows quadratically with window size x issue width.  This example
//! measures the SWSM window needed to match the DM on each representative
//! program and converts the window sizes into relative issue-logic delays.
//!
//! Run with:
//! ```text
//! cargo run --release --example issue_logic
//! ```

use dae::core::{dm_cycles, swsm_window_curve, ExperimentConfig, WindowSpec};
use dae::machines::{PAPER_AU_ISSUE_WIDTH, PAPER_DU_ISSUE_WIDTH, PAPER_SWSM_ISSUE_WIDTH};
use dae::ooo::IssueLogicModel;
use dae::PerfectProgram;

fn main() {
    let config = ExperimentConfig {
        iterations: 800,
        ..ExperimentConfig::quick()
    };
    let model = IssueLogicModel::default();
    let dm_window = 32;
    let md = 60;

    println!(
        "Issue-logic delay comparison (Palacharla-style quadratic model), DM window {dm_window}, MD {md}\n"
    );
    println!(
        "{:<8} {:>14} {:>16} {:>14} {:>18}",
        "program", "SWSM window", "window ratio", "delay ratio", "DM delay (a.u.)"
    );

    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(config.iterations);
        let dm = dm_cycles(&trace, WindowSpec::Entries(dm_window), md);
        let curve = swsm_window_curve(&trace, &config.equivalence_search_windows, md);
        let dm_delay = model.decoupled_delay(
            dm_window,
            PAPER_AU_ISSUE_WIDTH,
            dm_window,
            PAPER_DU_ISSUE_WIDTH,
        );
        match curve.window_for_cycles(dm) {
            Some(swsm_window) => {
                let delay_ratio = model.relative_delay(
                    swsm_window.ceil() as usize,
                    PAPER_SWSM_ISSUE_WIDTH,
                    dm_window,
                    PAPER_AU_ISSUE_WIDTH,
                    dm_window,
                    PAPER_DU_ISSUE_WIDTH,
                );
                println!(
                    "{:<8} {:>14.0} {:>15.1}x {:>13.1}x {:>18.2}",
                    program.name(),
                    swsm_window,
                    swsm_window / dm_window as f64,
                    delay_ratio,
                    dm_delay
                );
            }
            None => println!(
                "{:<8} {:>14} {:>16} {:>14} {:>18.2}",
                program.name(),
                "> search grid",
                "-",
                "-",
                dm_delay
            ),
        }
    }

    println!(
        "\nEven when the SWSM matches the DM's performance, its single large window at issue width {PAPER_SWSM_ISSUE_WIDTH} implies a much slower issue stage than the DM's two small windows — the paper's complexity argument."
    );
}
