//! Window study: speedup against window size and the equivalent window
//! ratio for one program — the data behind figures 4–9 of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example window_study [PROGRAM]
//! ```
//! where `PROGRAM` is one of the PERFECT names (default FLO52Q).

use dae::core::{equivalent_window_figure_in, speedup_figure_in, ExperimentConfig, SweepSession};
use dae::PerfectProgram;

fn main() {
    let program = std::env::args()
        .nth(1)
        .and_then(|name| PerfectProgram::from_name(&name))
        .unwrap_or(PerfectProgram::Flo52q);

    let config = ExperimentConfig {
        iterations: 800,
        ..ExperimentConfig::quick()
    };

    // One persistent session serves both figures: the program is lowered
    // once and the second figure's sweep reuses the warm per-worker
    // simulation pools left behind by the first.
    let mut session = SweepSession::new();

    let speedups = speedup_figure_in(&mut session, program, &config, &[0, 60]);
    println!("{speedups}");
    match speedups.crossover_window(0) {
        Some(w) => println!(
            "At MD=0 the SWSM catches the DM at a window of about {w} entries (the paper's cut-off point).\n"
        ),
        None => println!("At MD=0 the SWSM does not catch the DM within the swept windows.\n"),
    }
    match speedups.crossover_window(60) {
        Some(w) => println!("At MD=60 the SWSM catches the DM at a window of {w} entries.\n"),
        None => println!(
            "At MD=60 the DM stays ahead over the whole sweep — the paper's central result.\n"
        ),
    }

    let ewr = equivalent_window_figure_in(&mut session, program, &config);
    println!("{ewr}");
    println!(
        "(Each cell is the SWSM window size needed to match the DM, as a multiple of the DM window; '-' means no window in the search grid was large enough.)"
    );
    let stats = session.stats();
    println!(
        "\n[session: {} lowering(s) pinned, {} pin hit(s), {} batched + {} streamed points]",
        stats.pinned_traces, stats.pin_hits, stats.batched_points, stats.streamed_points
    );
}
