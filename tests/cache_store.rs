//! On-disk sweep-cache store suite: proptest round trips (random entries
//! → persist → reload ⇒ identical map), corruption tolerance (truncated
//! or bit-flipped tails load the valid prefix with `corrupt_records > 0`,
//! never a panic), and the session-level restart-warm path — a second
//! session attached to the same directory answers a previously-served
//! grid entirely from cache, bit for bit.

use dae::core::{
    CacheStore, Machine, StoreRecord, SweepPoint, SweepSession, TraceHash, WindowSpec,
};
use dae::workloads::PerfectProgram;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh directory under the system temp root (no tempfile crate in the
/// offline workspace); removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dae-cache-store-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

// The vendored proptest implements `Strategy` for tuples of up to five
// elements, so the seven record fields arrive as a nested pair.
type RawRecord = ((u64, u64, u8), (u8, u64, u64, u64));

fn decode_record(raw: RawRecord) -> StoreRecord {
    let ((hash_hi, hash_lo, machine), (window, md, cycles, cost_nanos)) = raw;
    let machine = match machine % 3 {
        0 => Machine::Decoupled,
        1 => Machine::Superscalar,
        _ => Machine::Scalar,
    };
    let window = match window % 4 {
        0 => WindowSpec::Unlimited,
        n => WindowSpec::Entries(n as usize * 16),
    };
    StoreRecord {
        hash: TraceHash::from_words(hash_hi, hash_lo),
        machine,
        window,
        md,
        cycles,
        cost_nanos,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Append random records, reopen, and get exactly the same sequence
    /// back — twice, since the first reopen must leave the log clean.
    #[test]
    fn random_records_round_trip(
        raw in proptest::collection::vec(
            (
                (any::<u64>(), any::<u64>(), any::<u8>()),
                (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            ),
            0..24,
        )
    ) {
        let scratch = Scratch::new();
        let records: Vec<StoreRecord> = raw.into_iter().map(decode_record).collect();
        let (mut store, load) = CacheStore::open(&scratch.0).expect("fresh store opens");
        prop_assert_eq!(load.records.len(), 0);
        prop_assert_eq!(load.corrupt_records, 0);
        for record in &records {
            store.append(record).expect("append succeeds");
        }
        drop(store);
        for _ in 0..2 {
            let (store, load) = CacheStore::open(&scratch.0).expect("reopen succeeds");
            prop_assert_eq!(&load.records, &records, "reload is lossless");
            prop_assert_eq!(load.corrupt_records, 0);
            drop(store);
        }
    }

    /// Truncating the file mid-record loads the intact prefix, counts the
    /// abandoned tail, and never panics; a reopen heals the log so the
    /// *next* open is clean.
    #[test]
    fn truncated_tails_load_the_valid_prefix(
        raw in proptest::collection::vec(
            (
                (any::<u64>(), any::<u64>(), any::<u8>()),
                (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            ),
            1..16,
        ),
        cut_words in 1usize..8,
    ) {
        let scratch = Scratch::new();
        let records: Vec<StoreRecord> = raw.into_iter().map(decode_record).collect();
        {
            let (mut store, _) = CacheStore::open(&scratch.0).expect("fresh store opens");
            for record in &records {
                store.append(record).expect("append succeeds");
            }
        }
        let path = CacheStore::location(&scratch.0);
        let bytes = fs::read(&path).expect("log exists");
        // Cut inside the last record (1..8 words in), leaving a partial
        // tail that cannot checksum.
        fs::write(&path, &bytes[..bytes.len() - cut_words * 8]).expect("truncate");

        let (store, load) = CacheStore::open(&scratch.0).expect("a torn log still opens");
        prop_assert_eq!(&load.records, &records[..records.len() - 1], "intact prefix");
        prop_assert!(load.corrupt_records > 0, "the abandoned tail is counted");
        drop(store);
        let (_, healed) = CacheStore::open(&scratch.0).expect("healed log opens");
        prop_assert_eq!(healed.records.len(), records.len() - 1);
        prop_assert_eq!(healed.corrupt_records, 0, "the reopen rewrote a clean log");
    }

    /// Flipping any single bit in the body abandons at most the suffix
    /// from the damaged record on — a clean partial load, never a panic.
    #[test]
    fn bit_flips_are_contained(
        raw in proptest::collection::vec(
            (
                (any::<u64>(), any::<u64>(), any::<u8>()),
                (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            ),
            1..12,
        ),
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let scratch = Scratch::new();
        let records: Vec<StoreRecord> = raw.into_iter().map(decode_record).collect();
        {
            let (mut store, _) = CacheStore::open(&scratch.0).expect("fresh store opens");
            for record in &records {
                store.append(record).expect("append succeeds");
            }
        }
        let path = CacheStore::location(&scratch.0);
        let mut bytes = fs::read(&path).expect("log exists");
        let header = 16;
        let target = header + (flip_byte as usize % (bytes.len() - header));
        bytes[target] ^= 1 << flip_bit;
        fs::write(&path, &bytes).expect("corrupt");

        let (_, load) = CacheStore::open(&scratch.0).expect("a corrupt log still opens");
        let damaged = (target - header) / 64;
        prop_assert_eq!(&load.records, &records[..damaged], "prefix before the flip survives");
        prop_assert!(load.corrupt_records > 0);
    }
}

/// A mangled header (wrong magic) abandons the file without refusing to
/// start: zero records, a counted corruption, and the store is usable.
#[test]
fn an_unrecognized_header_is_abandoned_not_fatal() {
    let scratch = Scratch::new();
    {
        let (mut store, _) = CacheStore::open(&scratch.0).expect("fresh store opens");
        store
            .append(&decode_record(((1, 2, 0), (1, 60, 1234, 99))))
            .expect("append succeeds");
    }
    let path = CacheStore::location(&scratch.0);
    let mut bytes = fs::read(&path).expect("log exists");
    bytes[0] ^= 0xff;
    fs::write(&path, &bytes).expect("mangle magic");

    let (mut store, load) = CacheStore::open(&scratch.0).expect("opens regardless");
    assert_eq!(load.records.len(), 0, "nothing trusted under a bad header");
    assert_eq!(load.corrupt_records, 1);
    // The handle appends onto a rewritten, clean log.
    let record = decode_record(((3, 4, 1), (0, 0, 777, 5)));
    store.append(&record).expect("append after heal");
    drop(store);
    let (_, reload) = CacheStore::open(&scratch.0).expect("reopen");
    assert_eq!(reload.records, vec![record]);
    assert_eq!(reload.corrupt_records, 0);
}

/// The restart-warm acceptance path at the session layer: sweep a grid
/// with a store attached, compact on shutdown, then attach a *fresh*
/// session (a fresh process's worth of state — the trace is re-lowered
/// from source) to the same directory.  The repeat grid must be answered
/// entirely from the loaded entries, bit for bit.
#[test]
fn a_restarted_session_answers_a_served_grid_entirely_from_cache() {
    let scratch = Scratch::new();
    let grid: Vec<(Machine, WindowSpec, u64)> = vec![
        (Machine::Decoupled, WindowSpec::Entries(16), 60),
        (Machine::Decoupled, WindowSpec::Entries(32), 0),
        (Machine::Superscalar, WindowSpec::Entries(32), 60),
        (Machine::Scalar, WindowSpec::Entries(1), 60),
    ];

    let cold = {
        let mut session = SweepSession::new();
        assert_eq!(
            session
                .attach_cache_store(&scratch.0)
                .expect("fresh dir attaches"),
            0
        );
        let id = session.pin_program(PerfectProgram::Trfd, 120);
        let cold = session.sweep(id, &grid);
        assert_eq!(session.cache_stats().persisted, grid.len() as u64);
        session.persist_cache().expect("shutdown compaction");
        cold
    };

    // "Restart": nothing survives but the directory.
    let mut warm = SweepSession::new();
    let loaded = warm
        .attach_cache_store(&scratch.0)
        .expect("warm dir attaches");
    assert_eq!(loaded, grid.len() as u64, "every entry reloaded");
    let stats = warm.cache_stats();
    assert_eq!(stats.loaded, grid.len() as u64);
    assert_eq!(stats.corrupt_records, 0);

    let id = warm.pin_program(PerfectProgram::Trfd, 120);
    let streamed: Vec<SweepPoint> = grid.iter().map(|&(m, w, md)| (id, m, w, md)).collect();
    let mut from_cache = 0;
    let mut ordered = vec![0u64; grid.len()];
    for point in warm.stream(&streamed) {
        from_cache += usize::from(point.cached);
        ordered[point.index] = point.cycles;
    }
    assert_eq!(from_cache, grid.len(), "zero simulated points on repeat");
    assert_eq!(ordered, cold, "warm results are bit-for-bit the cold run's");
    let after = warm.cache_stats();
    assert_eq!(after.misses, 0, "the restarted session simulated nothing");
    assert_eq!(after.hits, grid.len() as u64);
}

/// `clear_cache` with a store attached truncates the log too: a restart
/// after a clear starts cold.
#[test]
fn clearing_truncates_the_persisted_log() {
    let scratch = Scratch::new();
    {
        let mut session = SweepSession::new();
        session
            .attach_cache_store(&scratch.0)
            .expect("fresh dir attaches");
        let id = session.pin_program(PerfectProgram::Trfd, 120);
        let _ = session.sweep(id, &[(Machine::Decoupled, WindowSpec::Entries(16), 60)]);
        assert_eq!(session.cache_stats().persisted, 1);
        session.clear_cache();
    }
    let mut session = SweepSession::new();
    assert_eq!(
        session
            .attach_cache_store(&scratch.0)
            .expect("cleared dir attaches"),
        0,
        "a cleared store restarts cold"
    );
}

/// Shutdown compaction drops evicted and superseded entries from the log:
/// the reloaded set is exactly the resident set, within the bound.
#[test]
fn compaction_persists_only_the_resident_set() {
    let scratch = Scratch::new();
    let grid: Vec<(Machine, WindowSpec, u64)> = (0..6)
        .map(|i| (Machine::Scalar, WindowSpec::Entries(1), i * 10))
        .collect();
    {
        let mut session = SweepSession::new();
        session.set_cache_limit(Some(2));
        session
            .attach_cache_store(&scratch.0)
            .expect("fresh dir attaches");
        let id = session.pin_program(PerfectProgram::Trfd, 120);
        let _ = session.sweep(id, &grid);
        let stats = session.cache_stats();
        assert!(stats.entries <= 2);
        assert!(stats.evictions >= 4);
        assert_eq!(stats.persisted, 6, "appends happen before eviction");
        session.persist_cache().expect("shutdown compaction");
    }
    let mut session = SweepSession::new();
    let loaded = session
        .attach_cache_store(&scratch.0)
        .expect("warm dir attaches");
    assert_eq!(loaded, 2, "only the resident set survives compaction");
    assert_eq!(session.cache_stats().entries, 2);
}
