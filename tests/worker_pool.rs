//! Worker-pool lifecycle: the vendored rayon stub's workers must persist
//! across separate sweep invocations (keeping thread-local `SimPool`s
//! warm), shut down cleanly on drop, and survive panicking closures.
//!
//! The warm-pool assertions use process-wide monotone counters
//! (`dae::machines::pool_diagnostics`, `rayon::global_pool_stats`); tests
//! in this binary may run concurrently, so every assertion is phrased over
//! counter *deltas* that concurrent work can only push further in the
//! asserted direction.

use dae::core::{Machine, SweepSession, WindowSpec};
use dae::machines::pool_diagnostics;
use dae::PerfectProgram;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn grid() -> Vec<(Machine, WindowSpec, u64)> {
    vec![
        (Machine::Decoupled, WindowSpec::Entries(16), 60),
        (Machine::Decoupled, WindowSpec::Entries(32), 60),
        (Machine::Superscalar, WindowSpec::Entries(16), 60),
        (Machine::Superscalar, WindowSpec::Entries(32), 60),
        (Machine::Decoupled, WindowSpec::Entries(64), 0),
        (Machine::Superscalar, WindowSpec::Entries(64), 0),
    ]
}

/// Thread-local `SimPool`s survive between two *separate* sweep
/// invocations on one session: the second sweep checks recycled unit
/// scratch out of warm pools instead of allocating fresh, and no new
/// worker threads are spawned for it.
#[test]
fn sim_pools_stay_warm_across_separate_sweep_invocations() {
    let mut session = SweepSession::new();
    // This test pins the *pool* lifecycle, so the second sweep must really
    // simulate: the result cache would answer it without touching a pool.
    session.set_cache_enabled(false);
    let id = session.pin_program(PerfectProgram::Mdg, 120);

    // First invocation: fills every worker's thread-local pool (and
    // spawns the global pool's workers if no other test got there first).
    let first = session.sweep(id, &grid());

    let pools_before = pool_diagnostics();
    let workers_before = rayon::global_pool_stats().workers_spawned;

    // Second, separate invocation on the warm session.
    let second = session.sweep(id, &grid());

    let pools_after = pool_diagnostics();
    let workers_after = rayon::global_pool_stats().workers_spawned;

    assert_eq!(first, second, "warm reuse must not change results");
    assert!(
        pools_after.warm_unit_takes > pools_before.warm_unit_takes,
        "the second sweep must reuse pooled unit scratch \
         (warm takes before: {}, after: {})",
        pools_before.warm_unit_takes,
        pools_after.warm_unit_takes
    );
    assert_eq!(
        workers_before, workers_after,
        "a second sweep invocation must not spawn new workers"
    );
}

/// Re-running one pinned program also reuses the stream-keyed consumer
/// count templates (the memcpy-instead-of-dependence-walk path).
#[test]
fn warm_sessions_hit_the_stream_templates() {
    let mut session = SweepSession::new();
    // As above: the repeat must reach the simulator, not the result cache.
    session.set_cache_enabled(false);
    let id = session.pin_program(PerfectProgram::Trfd, 100);
    let dm_grid: Vec<(Machine, WindowSpec, u64)> = (0..4)
        .map(|i| (Machine::Decoupled, WindowSpec::Entries(8 << i), 60))
        .collect();
    let _ = session.sweep(id, &dm_grid);
    let before = pool_diagnostics();
    let _ = session.sweep(id, &dm_grid);
    let after = pool_diagnostics();
    assert!(
        after.template_hits > before.template_hits,
        "re-sweeping a pinned program must hit the cached consumer-count \
         templates (before: {}, after: {})",
        before.template_hits,
        after.template_hits
    );
}

/// Dropping a dedicated pool joins its workers after finishing the queued
/// work — no hang, no abandoned jobs.
#[test]
fn dropping_a_pool_shuts_down_cleanly() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let pool = rayon::ThreadPool::new(2);
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..32 {
        let ran = Arc::clone(&ran);
        pool.spawn(move || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
    }
    let out: Vec<u64> = pool.map((0u64..16).collect(), |x| x + 1);
    assert_eq!(out.len(), 16);
    let stats = pool.stats();
    assert_eq!(stats.workers_spawned, 2);
    drop(pool); // joins: must return, and the queued tasks must have run
    assert_eq!(ran.load(Ordering::Relaxed), 32);
}

/// A panicking closure propagates to the caller instead of deadlocking the
/// queue, and the pool keeps serving work afterwards.
#[test]
fn a_panicking_sweep_closure_propagates_and_the_pool_survives() {
    let pool = rayon::ThreadPool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _: Vec<u64> = pool.map((0u64..24).collect(), |x| {
            assert!(x != 11, "injected failure");
            x
        });
    }));
    assert!(result.is_err(), "the worker panic must reach the caller");
    // Same pool, next call: the queue must not be deadlocked or poisoned.
    let healthy: Vec<u64> = pool.map((0u64..24).collect(), |x| x * 2);
    assert_eq!(healthy[23], 46);
}

/// The same guarantee through the session layer's streaming path: a panic
/// on a worker is re-thrown to the stream consumer, and the global pool
/// (shared with every other sweep) stays healthy.
#[test]
fn global_pool_survives_panicking_parallel_calls() {
    use rayon::prelude::*;

    let result = catch_unwind(|| {
        let _: Vec<u64> = vec![1u64, 2, 3]
            .into_par_iter()
            .map(|x| {
                assert!(x != 2, "injected failure");
                x
            })
            .collect();
    });
    assert!(result.is_err());

    // A full sweep right after must work on the same global pool.
    let mut session = SweepSession::new();
    let id = session.pin_program(PerfectProgram::Qcd, 60);
    let cycles = session.sweep(id, &grid());
    assert!(cycles.iter().all(|&c| c > 0));
}

/// Randomized stress over the work-stealing deques: four external
/// submitter threads race fire-and-forget spawns, skew-cost batches and a
/// batch that panics while its sibling spans sit exposed to thieves, all
/// on one 4-worker pool. Every batch returns in order, the panic reaches
/// only its own submitter, every spawned task runs by drop time, and the
/// pool's accounting is exact.
#[test]
fn randomized_push_steal_stress_survives_mid_flight_panics() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let pool = rayon::ThreadPool::new(4);
    let spawned_ran = Arc::new(AtomicUsize::new(0));
    let expected_spawns = Arc::new(AtomicUsize::new(0));
    let expected_items = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for submitter in 0u64..4 {
            let pool = &pool;
            let spawned_ran = Arc::clone(&spawned_ran);
            let expected_spawns = Arc::clone(&expected_spawns);
            let expected_items = Arc::clone(&expected_items);
            scope.spawn(move || {
                // Deterministic xorshift per submitter: reproducible op
                // mixes, diverging interleavings.
                let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (submitter + 1);
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _round in 0..12 {
                    match next() % 4 {
                        0 => {
                            expected_spawns.fetch_add(16, Ordering::Relaxed);
                            for _ in 0..16 {
                                let ran = Arc::clone(&spawned_ran);
                                pool.spawn(move || {
                                    ran.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        }
                        1 => {
                            expected_items.fetch_add(96, Ordering::Relaxed);
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                let _: Vec<u64> = pool.map((0u64..96).collect(), |x| {
                                    for _ in 0..(x % 13) * 40 {
                                        std::hint::spin_loop();
                                    }
                                    assert!(x != 57, "injected failure");
                                    x
                                });
                            }));
                            assert!(result.is_err(), "the batch panic must propagate");
                        }
                        _ => {
                            expected_items.fetch_add(128, Ordering::Relaxed);
                            let skew = next() % 11;
                            let out: Vec<u64> = pool.map((0u64..128).collect(), move |x| {
                                // Skewed spin: early items cost more, so
                                // idle workers must steal the tail.
                                for _ in 0..(x % (skew + 2)) * 25 {
                                    std::hint::spin_loop();
                                }
                                x.wrapping_mul(2_654_435_761).rotate_left((x % 31) as u32)
                            });
                            let expect: Vec<u64> = (0u64..128)
                                .map(|x| x.wrapping_mul(2_654_435_761).rotate_left((x % 31) as u32))
                                .collect();
                            assert_eq!(out, expect, "stolen spans must land in order");
                        }
                    }
                }
            });
        }
    });

    let stats = pool.stats();
    assert_eq!(
        stats.items,
        expected_items.load(Ordering::Relaxed) as u64,
        "every batch item is accounted exactly once, panicked batches included"
    );
    assert!(
        stats.local_pops + stats.steals > 0,
        "the deques must have moved work (local pops: {}, steals: {})",
        stats.local_pops,
        stats.steals
    );
    assert_eq!(stats.task_panics, 0, "no fire-and-forget task panics here");

    // Drop drains the queued fire-and-forget tasks and joins.
    let expected = expected_spawns.load(Ordering::Relaxed);
    drop(pool);
    assert_eq!(spawned_ran.load(Ordering::Relaxed), expected);
}

/// Differential guarantee for the stealing scheduler: pooled sweeps are
/// bit-for-bit equal to a naive sequential reference at every worker count
/// from 1 through 8 and beyond — scheduling order, stealing and span
/// splitting can never change a simulated cycle count.
#[test]
fn pooled_sweeps_match_the_naive_reference_at_every_worker_count() {
    use dae::core::{dm_cycles, scalar_cycles, swsm_cycles};

    let trace = PerfectProgram::Trfd.workload().trace(80);
    let mut grid: Vec<(Machine, WindowSpec, u64)> = Vec::new();
    for &window in &[4usize, 8, 16, 32, 64, 128] {
        for &md in &[0u64, 30, 60] {
            grid.push((Machine::Decoupled, WindowSpec::Entries(window), md));
            grid.push((Machine::Superscalar, WindowSpec::Entries(window), md));
        }
    }
    grid.push((Machine::Scalar, WindowSpec::Entries(1), 60));

    let eval = |&(machine, window, md): &(Machine, WindowSpec, u64)| match machine {
        Machine::Decoupled => dm_cycles(&trace, window, md),
        Machine::Superscalar => swsm_cycles(&trace, window, md),
        Machine::Scalar => scalar_cycles(&trace, md),
    };
    let naive: Vec<u64> = grid.iter().map(eval).collect();

    for threads in [1usize, 2, 3, 4, 5, 6, 7, 8, 12] {
        let pool = rayon::ThreadPool::new(threads);
        let pooled: Vec<u64> = pool.map(grid.clone(), |point| eval(&point));
        assert_eq!(
            pooled, naive,
            "a {threads}-worker pool must match the sequential reference bit for bit"
        );
    }
}
