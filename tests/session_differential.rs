//! Session-differential suite: streamed [`SweepSession`] results must be
//! bit-for-bit identical to the batched session API, to the one-shot
//! `LoweredTrace::sweep`, and to the naive reference scheduler
//! (`run_reference`) — on randomized point grids across all three
//! machines, and across session reuse (multiple grids, multiple traces,
//! back to back on one session).

use dae::core::{
    dm_config, swsm_config, LoweredTrace, Machine, ScalarMode, SweepPoint, SweepSession, WindowSpec,
};
use dae::machines::{DecoupledMachine, ScalarConfig, ScalarReference, SuperscalarMachine};
use dae::trace::Trace;
use dae::workloads::random_kernel;
use dae::PerfectProgram;
use proptest::prelude::*;

/// The naive-reference execution time of one sweep point: the retained
/// seed scheduler driven cycle by cycle, constructed from scratch.
fn reference_cycles(trace: &Trace, machine: Machine, window: WindowSpec, md: u64) -> u64 {
    match machine {
        Machine::Decoupled => DecoupledMachine::new(dm_config(window, md))
            .run_reference(trace)
            .cycles(),
        Machine::Superscalar => SuperscalarMachine::new(swsm_config(window, md))
            .run_reference(trace)
            .cycles(),
        Machine::Scalar => ScalarReference::new(ScalarConfig::new(md))
            .run_reference(trace)
            .cycles(),
    }
}

/// Decodes a proptest-generated raw point into a sweep point.
fn decode_point(machine: u8, window: u8, md: u64) -> (Machine, WindowSpec, u64) {
    let machine = match machine % 3 {
        0 => Machine::Decoupled,
        1 => Machine::Superscalar,
        _ => Machine::Scalar,
    };
    let window = match window % 5 {
        0 => WindowSpec::Entries(4),
        1 => WindowSpec::Entries(13),
        2 => WindowSpec::Entries(32),
        3 => WindowSpec::Entries(128),
        _ => WindowSpec::Unlimited,
    };
    (machine, window, md)
}

/// Runs `points` on a fresh session four ways (batched, streamed, one-shot,
/// naive reference) and asserts bit-for-bit equality.
fn assert_all_paths_agree(trace: &Trace, points: &[(Machine, WindowSpec, u64)]) {
    let lowered = LoweredTrace::new(trace);
    let one_shot = lowered.sweep(points);

    let mut session = SweepSession::new();
    let id = session.pin_lowered(lowered);
    let batched = session.sweep(id, points);
    let full: Vec<SweepPoint> = points.iter().map(|&(m, w, md)| (id, m, w, md)).collect();
    let streamed = session.stream(&full).collect_ordered();

    assert_eq!(batched, one_shot, "batched session != one-shot sweep");
    assert_eq!(streamed, one_shot, "streamed session != one-shot sweep");
    for (&(machine, window, md), &cycles) in points.iter().zip(&one_shot) {
        assert_eq!(
            cycles,
            reference_cycles(trace, machine, window, md),
            "{machine} w={window} md={md} diverges from the naive reference"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Randomized grids over random kernels: every delivery path and the
    /// naive reference agree on every point.
    #[test]
    fn session_paths_agree_on_random_kernels(
        seed in 0u64..4000,
        stmts in 6usize..24,
        raw_points in proptest::collection::vec((0u8..6, 0u8..10, 0u64..80), 1..6)
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = dae::trace::expand(&kernel, 25);
        prop_assume!(!trace.is_empty());
        let points: Vec<_> = raw_points
            .into_iter()
            .map(|(m, w, md)| decode_point(m, w, md))
            .collect();
        assert_all_paths_agree(&trace, &points);
    }

    /// Randomized grids over the PERFECT workloads.
    #[test]
    fn session_paths_agree_on_perfect_workloads(
        program_idx in 0usize..7,
        raw_points in proptest::collection::vec((0u8..6, 0u8..10, 0u64..80), 1..5)
    ) {
        let trace = PerfectProgram::ALL[program_idx].workload().trace(40);
        let points: Vec<_> = raw_points
            .into_iter()
            .map(|(m, w, md)| decode_point(m, w, md))
            .collect();
        assert_all_paths_agree(&trace, &points);
    }
}

/// One session, several traces, several grids, streamed and batched
/// interleaved back to back — reuse must never change a result.
#[test]
fn one_session_serves_multiple_grids_and_traces_unchanged() {
    let trace_a = PerfectProgram::Mdg.workload().trace(90);
    let trace_b = PerfectProgram::Track.workload().trace(70);
    let lowered_a = LoweredTrace::new(&trace_a);
    let lowered_b = LoweredTrace::new(&trace_b);

    let grid_one: Vec<(Machine, WindowSpec, u64)> = vec![
        (Machine::Decoupled, WindowSpec::Entries(16), 60),
        (Machine::Superscalar, WindowSpec::Entries(32), 60),
        (Machine::Scalar, WindowSpec::Entries(1), 60),
    ];
    let grid_two: Vec<(Machine, WindowSpec, u64)> = vec![
        (Machine::Superscalar, WindowSpec::Unlimited, 0),
        (Machine::Decoupled, WindowSpec::Entries(8), 20),
    ];

    let mut session = SweepSession::new();
    let a = session.pin_trace(&trace_a);
    let b = session.pin_trace(&trace_b);

    let expect_a1 = lowered_a.sweep(&grid_one);
    let expect_a2 = lowered_a.sweep(&grid_two);
    let expect_b1 = lowered_b.sweep(&grid_one);
    let expect_b2 = lowered_b.sweep(&grid_two);

    // Interleave traces and grids, repeating grid one on trace A at the
    // end: a warm session must reproduce its own cold results.
    assert_eq!(session.sweep(a, &grid_one), expect_a1);
    assert_eq!(session.sweep(b, &grid_one), expect_b1);
    assert_eq!(session.sweep(a, &grid_two), expect_a2);
    let full: Vec<SweepPoint> = grid_one.iter().map(|&(m, w, md)| (a, m, w, md)).collect();
    assert_eq!(session.stream(&full).collect_ordered(), expect_a1);
    assert_eq!(session.sweep(a, &grid_one), expect_a1);

    // A mixed-trace grid through one call, streamed.
    let mixed: Vec<SweepPoint> = vec![
        (a, Machine::Decoupled, WindowSpec::Entries(16), 60),
        (b, Machine::Decoupled, WindowSpec::Entries(8), 20),
        (a, Machine::Scalar, WindowSpec::Entries(1), 60),
    ];
    let mixed_got = session.stream(&mixed).collect_ordered();
    assert_eq!(mixed_got[0], expect_a1[0]);
    assert_eq!(mixed_got[1], expect_b2[1]);
    assert_eq!(mixed_got[2], expect_a1[2]);
}

/// A simulated-scalar session reproduces the analytic session bit for bit
/// on a mixed grid (the property behind letting ablations sweep the scalar
/// machine through the simulator).
#[test]
fn simulated_scalar_sessions_match_analytic_sessions_on_mixed_grids() {
    let trace = PerfectProgram::Adm.workload().trace(80);
    let grid: Vec<(Machine, WindowSpec, u64)> = vec![
        (Machine::Scalar, WindowSpec::Entries(1), 0),
        (Machine::Decoupled, WindowSpec::Entries(32), 60),
        (Machine::Scalar, WindowSpec::Entries(1), 60),
        (Machine::Superscalar, WindowSpec::Entries(16), 40),
        (Machine::Scalar, WindowSpec::Entries(1), 25),
    ];
    let mut analytic = SweepSession::new();
    let a = analytic.pin_trace(&trace);
    let mut simulated = SweepSession::with_scalar_mode(ScalarMode::Simulated);
    let s = simulated.pin_trace(&trace);
    assert_eq!(analytic.sweep(a, &grid), simulated.sweep(s, &grid));

    let full: Vec<SweepPoint> = grid.iter().map(|&(m, w, md)| (s, m, w, md)).collect();
    assert_eq!(
        simulated.stream(&full).collect_ordered(),
        analytic.sweep(a, &grid)
    );
}
