//! Property-based tests over randomly generated kernels and inputs.
//!
//! The random-kernel generator in `dae-workloads` produces arbitrary (but
//! structurally valid) loop bodies; these properties assert the invariants
//! that must hold for *any* program: lowering conservation laws, analytical
//! bounds on execution time, monotonicity in machine resources, and the
//! basic algebra of the metrics.

use dae::core::{
    dm_cycles, equivalent_window_ratio, scalar_cycles, swsm_cycles, LoweredTrace, Machine,
    ScalarMode, SweepSession, WindowCurve, WindowSpec,
};
use dae::isa::{AddressPattern, LatencyModel};
use dae::machines::{DecoupledMachine, DmConfig, SuperscalarMachine, SwsmConfig};
use dae::trace::{
    classify, dataflow_summary, expand, expand_swsm, lower_scalar, partition, PartitionMode,
};
use dae::workloads::random_kernel;
use proptest::prelude::*;

fn proptest_config() -> ProptestConfig {
    ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(proptest_config())]

    /// Lowering conservation: every architectural instruction appears in
    /// every lowering, memory operations are split exactly once, and no
    /// dependence ever points forward.
    #[test]
    fn lowerings_conserve_instructions(seed in 0u64..5000, stmts in 6usize..40, iters in 1u64..40) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, iters);
        let stats = trace.stats();

        let scalar = lower_scalar(&trace);
        prop_assert_eq!(scalar.insts.len(), trace.len());

        let swsm = expand_swsm(&trace);
        prop_assert_eq!(swsm.insts.len(), trace.len() + stats.loads + stats.stores);

        let dm = partition(&trace, PartitionMode::Tagged);
        // AU + DU hold: every arithmetic instruction once, every load as a
        // request plus its consumes, every store twice, plus copies.
        let expected_min = trace.len() + stats.stores; // loads may have no consumer
        prop_assert!(dm.au.len() + dm.du.len() >= expected_min);
        let copies = dm.stats.copies_au_to_du + dm.stats.copies_du_to_au;
        let consumes = dm.stats.du_consumed_loads + dm.stats.au_self_loads;
        prop_assert_eq!(
            dm.au.len() + dm.du.len(),
            trace.len() + stats.stores + consumes + copies
        );

        for stream in [&dm.au, &dm.du, &swsm.insts, &scalar.insts] {
            for (pos, inst) in stream.iter().enumerate() {
                for dep in &inst.deps {
                    if !dep.is_cross() {
                        prop_assert!(dep.index() < pos);
                    }
                }
            }
        }
    }

    /// The automatic classifier marks every memory operation as access work
    /// and every floating point operation as compute work.
    #[test]
    fn classification_respects_operation_kinds(seed in 0u64..5000, stmts in 6usize..40) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 10);
        let classes = classify(&trace);
        for inst in trace.iter() {
            if inst.op.is_memory() {
                prop_assert_eq!(classes[inst.id], dae::isa::UnitClass::Access);
            }
            if inst.op.is_fp() {
                prop_assert_eq!(classes[inst.id], dae::isa::UnitClass::Compute);
            }
        }
    }

    /// Execution-time bounds hold for every machine on every random kernel:
    /// dataflow limit <= machine <= scalar reference, and memory latency
    /// never speeds anything up.
    #[test]
    fn execution_time_bounds_hold(seed in 0u64..2000, stmts in 6usize..28, md in 0u64..80) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 25);
        let latencies = LatencyModel::paper_default();
        let limit = dataflow_summary(&trace, &latencies, 0).critical_path_perfect;
        let serial = scalar_cycles(&trace, md);

        let dm = dm_cycles(&trace, WindowSpec::Entries(16), md);
        let swsm = swsm_cycles(&trace, WindowSpec::Entries(16), md);
        prop_assert!(dm >= limit && dm <= serial, "dm={dm} limit={limit} serial={serial}");
        prop_assert!(swsm >= limit && swsm <= serial, "swsm={swsm} limit={limit} serial={serial}");

        // Memory latency "never speeds anything up" only modulo scheduling
        // anomalies: with width-limited oldest-first issue and in-order
        // retirement, *shortening* an operation can reshuffle the issue
        // order and lengthen the makespan (Graham's list-scheduling
        // anomalies, worst case 2 - 1/m).  Observed anomalies on these
        // kernels reach ~15% (e.g. 46 vs 53 cycles at MD 1 vs 0), so
        // assert monotonicity up to a 25% slack: loose enough for the real
        // effect, tight enough to catch a dropped latency charge.
        let dm_zero = dm_cycles(&trace, WindowSpec::Entries(16), 0);
        let swsm_zero = swsm_cycles(&trace, WindowSpec::Entries(16), 0);
        prop_assert!(4 * dm >= 3 * dm_zero, "dm={dm} dm_zero={dm_zero}");
        prop_assert!(4 * swsm >= 3 * swsm_zero, "swsm={swsm} swsm_zero={swsm_zero}");
    }

    /// An unlimited window is never slower than a small one, for either
    /// machine, on any random kernel.
    #[test]
    fn unlimited_windows_dominate_small_ones(seed in 0u64..2000, stmts in 6usize..28) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 25);
        for md in [0u64, 60] {
            prop_assert!(
                dm_cycles(&trace, WindowSpec::Unlimited, md)
                    <= dm_cycles(&trace, WindowSpec::Entries(8), md)
            );
            prop_assert!(
                swsm_cycles(&trace, WindowSpec::Unlimited, md)
                    <= swsm_cycles(&trace, WindowSpec::Entries(8), md)
            );
        }
    }

    /// The pooled *simulated* scalar machine matches the O(1) analytic
    /// formula bit for bit on any random kernel — the property that lets
    /// sweep sessions switch between [`ScalarMode::Analytic`] and
    /// [`ScalarMode::Simulated`] without changing a single figure.
    #[test]
    fn pooled_simulated_scalar_matches_the_analytic_formula(
        seed in 0u64..4000,
        stmts in 6usize..32,
        md in 0u64..100
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let lowered = LoweredTrace::new(&trace);
        // Run the pooled simulation twice: the second run reuses the warm
        // thread-local pool and must reproduce the first.
        let simulated = lowered.scalar_cycles_simulated(md);
        prop_assert_eq!(simulated, lowered.scalar_cycles(md));
        prop_assert_eq!(simulated, lowered.scalar_cycles_simulated(md));
    }

    /// The DM's detailed result is internally consistent on any kernel:
    /// everything dispatched is issued and retired, and the memory counters
    /// never exceed the partition's structural counts.
    #[test]
    fn dm_results_are_internally_consistent(seed in 0u64..2000, stmts in 6usize..28) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let result = DecoupledMachine::new(DmConfig::paper(16, 40)).run(&trace);
        prop_assert_eq!(result.au.dispatched, result.au.issued);
        prop_assert_eq!(result.du.dispatched, result.du.issued);
        prop_assert_eq!(result.au.retired + result.du.retired, result.au.issued + result.du.issued);
        prop_assert_eq!(result.memory.load_requests as usize, result.partition.loads);
        prop_assert!(result.summary.cycles > 0 || trace.is_empty());
        prop_assert!(result.esw.max_esw >= result.esw.max_slip);
    }

    /// The SWSM's prefetch buffer sees exactly one prefetch per memory
    /// operation and only load accesses query it.
    #[test]
    fn swsm_buffer_counters_match_the_lowering(seed in 0u64..2000, stmts in 6usize..28) {
        let kernel = random_kernel(seed, stmts);
        let trace = expand(&kernel, 20);
        let stats = trace.stats();
        let result = SuperscalarMachine::new(SwsmConfig::paper(16, 40)).run(&trace);
        prop_assert_eq!(result.buffer.prefetches, (stats.loads + stats.stores) as u64);
        prop_assert_eq!(result.buffer.hits + result.buffer.misses, stats.loads as u64);
        prop_assert_eq!(result.lowering.prefetches, stats.loads + stats.stores);
    }

    /// Address patterns are deterministic and stay within their configured
    /// spans.
    #[test]
    fn address_patterns_are_deterministic_and_bounded(
        base in 0u64..(1 << 40),
        stride in 1u64..4096,
        span in 64u64..(1 << 24),
        iteration in 0u64..100_000
    ) {
        let strided = AddressPattern::Strided { base, stride };
        prop_assert_eq!(strided.address_at(iteration), base + iteration * stride);

        let wrapped = AddressPattern::StridedWrapped { base, stride, span };
        let w = wrapped.address_at(iteration);
        prop_assert!(w >= base && w < base + span);
        prop_assert_eq!(w, wrapped.address_at(iteration));

        let indirect = AddressPattern::Indirect { base, span };
        let a = indirect.address_at(iteration);
        prop_assert!(a >= base && a < base + span);
        prop_assert_eq!(a, indirect.address_at(iteration));
    }

    /// The window-curve interpolation always returns a window inside the
    /// measured range and is monotone in the target execution time.
    #[test]
    fn window_curve_interpolation_is_sane(
        mut cycles in proptest::collection::vec(100u64..100_000, 3..8),
        target_a in 50u64..200_000,
        target_b in 50u64..200_000
    ) {
        // Build a strictly decreasing curve over growing windows.
        cycles.sort_unstable_by(|a, b| b.cmp(a));
        cycles.dedup();
        let points: Vec<(usize, u64)> = cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| (8 * (i + 1), c))
            .collect();
        prop_assume!(points.len() >= 2);
        let curve = WindowCurve::new(points.clone());

        let smallest = points.first().unwrap().0 as f64;
        let largest = points.last().unwrap().0 as f64;
        for target in [target_a, target_b] {
            if let Some(window) = curve.window_for_cycles(target) {
                prop_assert!(window >= smallest - 1e-9 && window <= largest + 1e-9);
            }
        }
        let (lo, hi) = (target_a.min(target_b), target_a.max(target_b));
        if let (Some(w_lo), Some(w_hi)) = (curve.window_for_cycles(lo), curve.window_for_cycles(hi)) {
            // A stricter (smaller-cycle) target needs at least as large a window.
            prop_assert!(w_lo + 1e-9 >= w_hi);
        }

        // The ratio helper is consistent with the interpolation.
        if let Some(ratio) = equivalent_window_ratio(16, lo, &curve) {
            prop_assert!((ratio - curve.window_for_cycles(lo).unwrap() / 16.0).abs() < 1e-9);
        }
    }
}

/// Pooled simulated scalar runs equal the analytic formula on all seven
/// PERFECT workloads, through a warm simulated-scalar sweep session — the
/// deployment shape of the scalar ablations.
#[test]
fn pooled_simulated_scalar_matches_the_analytic_formula_on_the_perfect_suite() {
    let mut session = SweepSession::with_scalar_mode(ScalarMode::Simulated);
    let points: Vec<(Machine, WindowSpec, u64)> = [0u64, 20, 60]
        .iter()
        .map(|&md| (Machine::Scalar, WindowSpec::Entries(1), md))
        .collect();
    for program in dae::PerfectProgram::ALL {
        let trace = program.workload().trace(80);
        let id = session.pin_trace(&trace);
        let simulated = session.sweep(id, &points);
        for (&(_, _, md), &cycles) in points.iter().zip(&simulated) {
            assert_eq!(
                cycles,
                scalar_cycles(&trace, md),
                "{program} md={md}: pooled simulated scalar diverges from the analytic formula"
            );
        }
    }
}
