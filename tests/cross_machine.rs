//! Cross-crate consistency checks: the machines, lowerings and analytical
//! bounds must agree with each other on every workload.

use dae::core::{dm_cycles, scalar_cycles, swsm_cycles, WindowSpec};
use dae::isa::LatencyModel;
use dae::machines::{
    DecoupledMachine, DmConfig, ScalarConfig, ScalarReference, SuperscalarMachine, SwsmConfig,
};
use dae::trace::{dataflow_summary, expand_swsm, partition, PartitionMode};
use dae::workloads::{suite, synthetic_suite, PerfectProgram};

/// Every machine's execution time is bounded below by the dataflow critical
/// path (with single-cycle memory) and bounded above by the scalar
/// reference's fully serialised time.
#[test]
fn execution_times_sit_between_the_dataflow_limit_and_the_serial_bound() {
    let latencies = LatencyModel::paper_default();
    for workload in suite().iter().chain(synthetic_suite().iter()) {
        let trace = workload.trace(120);
        if trace.is_empty() {
            continue;
        }
        let summary = dataflow_summary(&trace, &latencies, 0);
        for md in [0u64, 60] {
            let serial = scalar_cycles(&trace, md);
            for (name, cycles) in [
                ("DM", dm_cycles(&trace, WindowSpec::Entries(32), md)),
                ("SWSM", swsm_cycles(&trace, WindowSpec::Entries(32), md)),
            ] {
                assert!(
                    cycles >= summary.critical_path_perfect,
                    "{} {name} md={md}: {cycles} below the dataflow limit {}",
                    workload.name(),
                    summary.critical_path_perfect
                );
                assert!(
                    cycles <= serial,
                    "{} {name} md={md}: {cycles} exceeds the serial bound {serial}",
                    workload.name(),
                );
            }
        }
    }
}

/// Larger windows never hurt, and the unlimited window is the fastest
/// configuration of all, for both machines.
#[test]
fn bigger_windows_are_never_slower() {
    for program in [
        PerfectProgram::Trfd,
        PerfectProgram::Mdg,
        PerfectProgram::Track,
    ] {
        let trace = program.workload().trace(150);
        for md in [0u64, 60] {
            let mut previous_dm = u64::MAX;
            let mut previous_swsm = u64::MAX;
            for window in [4usize, 16, 64, 256] {
                let dm = dm_cycles(&trace, WindowSpec::Entries(window), md);
                let swsm = swsm_cycles(&trace, WindowSpec::Entries(window), md);
                assert!(dm <= previous_dm, "{program} md={md} window {window}");
                assert!(swsm <= previous_swsm, "{program} md={md} window {window}");
                previous_dm = dm;
                previous_swsm = swsm;
            }
            assert!(dm_cycles(&trace, WindowSpec::Unlimited, md) <= previous_dm);
            assert!(swsm_cycles(&trace, WindowSpec::Unlimited, md) <= previous_swsm);
        }
    }
}

/// A larger memory differential never makes any machine faster.
#[test]
fn more_memory_latency_never_helps() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(100);
        let mut previous = (0u64, 0u64, 0u64);
        for md in [0u64, 20, 40, 60] {
            let current = (
                dm_cycles(&trace, WindowSpec::Entries(32), md),
                swsm_cycles(&trace, WindowSpec::Entries(32), md),
                scalar_cycles(&trace, md),
            );
            assert!(current.0 >= previous.0, "{program} DM md={md}");
            assert!(current.1 >= previous.1, "{program} SWSM md={md}");
            assert!(current.2 >= previous.2, "{program} scalar md={md}");
            previous = current;
        }
    }
}

/// The static (tagged) and automatic (slice-based) partitions give the same
/// execution time for every program that does not deliberately compute
/// addresses on the data unit.
#[test]
fn tagged_and_automatic_partitions_agree_except_for_track() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(120);
        let mut tagged_config = DmConfig::paper(32, 60);
        tagged_config.partition_mode = PartitionMode::Tagged;
        let mut auto_config = DmConfig::paper(32, 60);
        auto_config.partition_mode = PartitionMode::Automatic;
        let tagged = DecoupledMachine::new(tagged_config).run(&trace);
        let auto = DecoupledMachine::new(auto_config).run(&trace);
        if program == PerfectProgram::Track {
            // TRACK computes its gate index from floating point data, so a
            // DU -> AU copy per iteration is unavoidable under either
            // partition (the integer conversion can move to the AU, but the
            // floating point value it consumes cannot).  The two partitions
            // may differ slightly in where the copy sits but must stay close
            // in performance.
            assert!(tagged.partition.copies_du_to_au > 0);
            assert!(auto.partition.copies_du_to_au > 0);
            let ratio = auto.cycles() as f64 / tagged.cycles() as f64;
            assert!(
                (0.8..1.2).contains(&ratio),
                "TRACK: partitions diverge too much ({ratio:.2})"
            );
        } else {
            assert_eq!(tagged.cycles(), auto.cycles(), "{program}");
            assert_eq!(tagged.partition, auto.partition, "{program}");
        }
    }
}

/// The simulated scalar machine matches its analytic execution-time formula
/// on every workload in the suite.
#[test]
fn scalar_simulation_matches_the_analytic_formula() {
    for workload in suite() {
        let trace = workload.trace(60);
        for md in [0u64, 30, 60] {
            let machine = ScalarReference::new(ScalarConfig::new(md));
            assert_eq!(
                machine.run(&trace).cycles(),
                machine.analytic_cycles(&trace),
                "{} md={md}",
                workload.name()
            );
        }
    }
}

/// Machine-instruction accounting: every lowered instruction is dispatched,
/// issued and retired exactly once by the machines.
#[test]
fn every_lowered_instruction_is_executed_exactly_once() {
    for program in [
        PerfectProgram::Adm,
        PerfectProgram::Qcd,
        PerfectProgram::Track,
    ] {
        let trace = program.workload().trace(100);
        let lowered = partition(&trace, PartitionMode::Tagged);
        let expanded = expand_swsm(&trace);

        let dm = DecoupledMachine::new(DmConfig::paper(16, 40)).run(&trace);
        assert_eq!(
            dm.au.issued + dm.du.issued,
            (lowered.au.len() + lowered.du.len()) as u64,
            "{program} DM"
        );
        assert_eq!(dm.au.retired + dm.du.retired, dm.au.issued + dm.du.issued);

        let swsm = SuperscalarMachine::new(SwsmConfig::paper(16, 40)).run(&trace);
        assert_eq!(
            swsm.unit.issued,
            expanded.insts.len() as u64,
            "{program} SWSM"
        );
        assert_eq!(swsm.unit.retired, swsm.unit.issued);
    }
}

/// The decoupled machine's memory counters are consistent with the
/// partition's structure.
#[test]
fn decoupled_memory_counters_match_the_partition() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(80);
        let result = DecoupledMachine::new(DmConfig::paper(32, 60)).run(&trace);
        assert_eq!(
            result.memory.load_requests as usize, result.partition.loads,
            "{program}: one memory request per architectural load"
        );
        assert!(
            result.memory.consumed as usize
                <= result.partition.du_consumed_loads + result.partition.au_self_loads,
            "{program}: consumes cannot exceed consumers"
        );
        assert_eq!(
            result.memory.store_requests as usize,
            2 * result.partition.stores,
            "{program}: store address + store data both notify the decoupled memory"
        );
    }
}
