//! Sweep-result cache differential suite: cached, uncached and naive
//! reference results must be bit-for-bit identical on randomized grids
//! across all three machines; overlapping EWR-style figure grids must
//! actually *hit*; and identity is *structural* — a re-lowered (distinct
//! `Arc`) copy of the same program shares the first copy's content hash,
//! hits its entries, and is proven to receive exactly the results its own
//! simulations would have produced (the hash-equal ⇒ bit-for-bit-equal
//! differential that makes content addressing safe).

use dae::core::{
    dm_config, equivalent_window_figure, equivalent_window_figure_in, swsm_config,
    window_ratio_claim, window_ratio_claim_in, ExperimentConfig, Machine, SweepPoint, SweepSession,
    WindowSpec,
};
use dae::machines::{DecoupledMachine, ScalarConfig, ScalarReference, SuperscalarMachine};
use dae::trace::Trace;
use dae::workloads::random_kernel;
use dae::PerfectProgram;
use proptest::prelude::*;

/// The naive-reference execution time of one sweep point: the retained
/// seed scheduler driven cycle by cycle, constructed from scratch.
fn reference_cycles(trace: &Trace, machine: Machine, window: WindowSpec, md: u64) -> u64 {
    match machine {
        Machine::Decoupled => DecoupledMachine::new(dm_config(window, md))
            .run_reference(trace)
            .cycles(),
        Machine::Superscalar => SuperscalarMachine::new(swsm_config(window, md))
            .run_reference(trace)
            .cycles(),
        Machine::Scalar => ScalarReference::new(ScalarConfig::new(md))
            .run_reference(trace)
            .cycles(),
    }
}

/// Decodes a proptest-generated raw point into a sweep point.
fn decode_point(machine: u8, window: u8, md: u64) -> (Machine, WindowSpec, u64) {
    let machine = match machine % 3 {
        0 => Machine::Decoupled,
        1 => Machine::Superscalar,
        _ => Machine::Scalar,
    };
    let window = match window % 5 {
        0 => WindowSpec::Entries(4),
        1 => WindowSpec::Entries(13),
        2 => WindowSpec::Entries(32),
        3 => WindowSpec::Entries(128),
        _ => WindowSpec::Unlimited,
    };
    (machine, window, md)
}

/// Runs `points` three ways — a caching session (twice, so the second run
/// is answered from the cache), an uncached session, and the naive
/// reference per point — and asserts bit-for-bit equality everywhere.
fn assert_cached_uncached_and_reference_agree(
    trace: &Trace,
    points: &[(Machine, WindowSpec, u64)],
) {
    let mut cached = SweepSession::new();
    assert!(cached.cache_enabled(), "sessions cache by default");
    let c = cached.pin_trace(trace);
    let first = cached.sweep(c, points);
    let second = cached.sweep(c, points);
    let full: Vec<SweepPoint> = points.iter().map(|&(m, w, md)| (c, m, w, md)).collect();
    let streamed = cached.stream(&full).collect_ordered();

    let mut uncached = SweepSession::new();
    uncached.set_cache_enabled(false);
    let u = uncached.pin_trace(trace);
    let plain = uncached.sweep(u, points);

    assert_eq!(first, plain, "cached first run != uncached run");
    assert_eq!(second, plain, "cache-served repeat != uncached run");
    assert_eq!(streamed, plain, "cache-served stream != uncached run");
    for (&(machine, window, md), &cycles) in points.iter().zip(&plain) {
        assert_eq!(
            cycles,
            reference_cycles(trace, machine, window, md),
            "{machine} w={window} md={md} diverges from the naive reference"
        );
    }

    // The repeat and the stream were answered without simulating: every
    // distinct point was simulated exactly once across all three passes.
    let stats = cached.cache_stats();
    assert!(stats.entries <= points.len());
    assert_eq!(
        stats.misses, stats.entries as u64,
        "one simulation per entry"
    );
    assert_eq!(
        stats.hits + stats.misses,
        3 * points.len() as u64,
        "every pass accounted each point as a hit or a miss"
    );
    assert_eq!(
        stats.hits + stats.misses,
        stats.lookups,
        "lookup classification is exact"
    );
    assert_eq!(uncached.cache_stats(), Default::default());

    // Content addressing: an independently re-lowered pin of the same
    // trace shares the structural hash, so it is answered entirely from
    // the first pin's entries — and the results are bit-for-bit the ones
    // its own simulations would have produced (`plain`).
    let relowered = cached.pin_trace(trace);
    assert_ne!(relowered, c, "distinct pins, shared structural identity");
    let via_cache = cached.sweep(relowered, points);
    assert_eq!(via_cache, plain, "hash-equal must imply result-equal");
    let after = cached.cache_stats();
    assert_eq!(after.misses, stats.misses, "no new simulations");
    assert_eq!(after.entries, stats.entries, "no new entries");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Randomized grids over random kernels: caching never changes a
    /// result, and repeats never re-simulate.
    #[test]
    fn cache_is_invisible_on_random_kernels(
        seed in 4000u64..8000,
        stmts in 6usize..24,
        raw_points in proptest::collection::vec((0u8..6, 0u8..10, 0u64..80), 1..6)
    ) {
        let kernel = random_kernel(seed, stmts);
        let trace = dae::trace::expand(&kernel, 25);
        prop_assume!(!trace.is_empty());
        let points: Vec<_> = raw_points
            .into_iter()
            .map(|(m, w, md)| decode_point(m, w, md))
            .collect();
        assert_cached_uncached_and_reference_agree(&trace, &points);
    }

    /// Randomized grids over the PERFECT workloads.
    #[test]
    fn cache_is_invisible_on_perfect_workloads(
        program_idx in 0usize..7,
        raw_points in proptest::collection::vec((0u8..6, 0u8..10, 0u64..80), 1..5)
    ) {
        let trace = PerfectProgram::ALL[program_idx].workload().trace(40);
        let points: Vec<_> = raw_points
            .into_iter()
            .map(|(m, w, md)| decode_point(m, w, md))
            .collect();
        assert_cached_uncached_and_reference_agree(&trace, &points);
    }
}

/// The motivating workload shape: the equivalent-window-ratio figure and
/// the §5 window-ratio claim sweep heavily overlapping grids (the claim
/// re-visits the figure's SWSM search windows and its DM point at MD =
/// 60).  Sharing a session, the second generator must *hit* — and both
/// must produce exactly the figures a cold one-shot run produces.
#[test]
fn overlapping_ewr_grids_hit_the_cache_and_figures_are_unchanged() {
    let cfg = ExperimentConfig {
        iterations: 120,
        dm_windows: vec![8, 32, 64],
        swsm_windows: vec![8, 32, 64],
        equivalence_search_windows: vec![8, 16, 32, 64, 128, 256],
        memory_differentials: vec![0, 60],
    };
    let mut session = SweepSession::new();

    let fig = equivalent_window_figure_in(&mut session, PerfectProgram::Mdg, &cfg);
    let after_figure = session.cache_stats();
    assert!(after_figure.misses > 0, "a cold session simulates");

    let claim = window_ratio_claim_in(&mut session, &cfg, 32, 60);
    let after_claim = session.cache_stats();
    let claim_hits = after_claim.hits - after_figure.hits;
    assert!(
        claim_hits >= cfg.equivalence_search_windows.len() as u64,
        "the claim's MDG search grid must come from the figure's entries \
         (hit {claim_hits} of at least {})",
        cfg.equivalence_search_windows.len()
    );

    // Repeating the whole figure re-simulates nothing at all.
    let again = equivalent_window_figure_in(&mut session, PerfectProgram::Mdg, &cfg);
    let after_repeat = session.cache_stats();
    assert_eq!(
        after_repeat.misses, after_claim.misses,
        "a repeated figure must not simulate a single point"
    );

    // And every cached figure equals its cold one-shot counterpart.
    assert_eq!(fig, equivalent_window_figure(PerfectProgram::Mdg, &cfg));
    assert_eq!(again, fig);
    assert_eq!(claim, window_ratio_claim(&cfg, 32, 60));
}

/// Identity is the structural content hash of the lowering, not the
/// pinned `Arc`: re-lowering the same source trace into a second pin
/// produces the same hash, so the copy is answered entirely from the
/// first pin's entries — with results proven bit-for-bit equal to a fresh
/// simulation by the differential above.  Distinct traces keep distinct
/// hashes (no false aliasing), and `pin_program`'s id-level dedup still
/// works on top.
#[test]
fn a_relowered_copy_of_the_same_program_hits_structurally() {
    let trace = PerfectProgram::Trfd.workload().trace(80);
    let grid: Vec<(Machine, WindowSpec, u64)> = vec![
        (Machine::Decoupled, WindowSpec::Entries(16), 60),
        (Machine::Superscalar, WindowSpec::Entries(32), 60),
        (Machine::Scalar, WindowSpec::Entries(1), 60),
    ];
    let mut session = SweepSession::new();

    // Two separate pins of the same source trace: distinct ids, one
    // structural identity.
    let first = session.pin_trace(&trace);
    let second = session.pin_trace(&trace);
    assert_ne!(first, second);
    assert_eq!(
        session.lowered(first).content_hash(),
        session.lowered(second).content_hash(),
        "re-lowering is deterministic"
    );

    let first_cycles = session.sweep(first, &grid);
    let between = session.cache_stats();
    assert_eq!(between.misses, grid.len() as u64);

    let second_cycles = session.sweep(second, &grid);
    let after = session.cache_stats();
    assert_eq!(first_cycles, second_cycles, "same program, same results");
    assert_eq!(
        after.hits,
        between.hits + grid.len() as u64,
        "the re-lowered copy is answered from the original's entries"
    );
    assert_eq!(
        after.misses,
        grid.len() as u64,
        "no point of the copy re-simulated"
    );
    assert_eq!(after.entries, grid.len(), "no duplicate entries");

    // A *different* program must not alias: its hash differs and its
    // sweep misses everywhere.
    let other = session.pin_trace(&PerfectProgram::Mdg.workload().trace(80));
    assert_ne!(
        session.lowered(other).content_hash(),
        session.lowered(first).content_hash()
    );
    let _ = session.sweep(other, &grid);
    let distinct = session.cache_stats();
    assert_eq!(distinct.misses, 2 * grid.len() as u64);
    assert_eq!(distinct.entries, 2 * grid.len());

    // pin_program's id-level dedup still resolves to one identity.
    let mut programs = SweepSession::new();
    let a = programs.pin_program(PerfectProgram::Trfd, 80);
    let b = programs.pin_program(PerfectProgram::Trfd, 80);
    assert_eq!(a, b);
    let _ = programs.sweep(a, &grid);
    let _ = programs.sweep(b, &grid);
    assert_eq!(programs.cache_stats().hits, grid.len() as u64);
    assert_eq!(programs.cache_stats().misses, grid.len() as u64);
}
