//! Integration tests asserting the paper's qualitative results.
//!
//! These tests run the full pipeline (workload model -> trace -> lowering ->
//! cycle-level machine) and check the *shape* of the results the paper
//! reports: who wins, in which regime, and by roughly what kind of factor.
//! Absolute cycle counts are implementation specific and are not asserted.

use dae::core::{
    dm_cycles, equivalent_window_figure, scalar_cycles, speedup, speedup_figure, swsm_cycles,
    table1, ExperimentConfig, Machine, WindowSpec,
};
use dae::machines::{DecoupledMachine, DmConfig};
use dae::workloads::{LatencyHidingBand, PerfectProgram};

fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        iterations: 200,
        dm_windows: vec![8, 16, 32, 64, 128],
        swsm_windows: vec![8, 16, 32, 64, 128],
        equivalence_search_windows: vec![8, 16, 32, 64, 128, 256, 512],
        memory_differentials: vec![0, 20, 60],
    }
}

/// §5, figures 4-6: at MD = 60 the DM outperforms the SWSM at every window
/// size the paper sweeps, for every program in the suite.
#[test]
fn dm_beats_swsm_at_md60_for_every_program_and_window() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(200);
        for window in [8usize, 32, 128] {
            let dm = dm_cycles(&trace, WindowSpec::Entries(window), 60);
            let swsm = swsm_cycles(&trace, WindowSpec::Entries(window), 60);
            assert!(
                dm < swsm,
                "{program} window {window}: DM {dm} should beat SWSM {swsm} at MD=60"
            );
        }
    }
}

/// §5: at MD = 0 and small windows the DM is still ahead (two windows mean
/// fewer conflicts for window slots), but with a large enough window the
/// SWSM's unified issue width lets it catch up.
#[test]
fn md0_small_windows_favour_dm_and_large_windows_favour_swsm() {
    for program in PerfectProgram::REPRESENTATIVE {
        let trace = program.workload().trace(200);
        let dm_small = dm_cycles(&trace, WindowSpec::Entries(8), 0);
        let swsm_small = swsm_cycles(&trace, WindowSpec::Entries(8), 0);
        assert!(
            dm_small <= swsm_small,
            "{program}: DM should win at an 8-entry window and MD=0"
        );

        // With unlimited windows the SWSM's width-9 single pipeline matches
        // or beats the width-4/5 pair for these width-bound programs.
        let dm_unlimited = dm_cycles(&trace, WindowSpec::Unlimited, 0);
        let swsm_unlimited = swsm_cycles(&trace, WindowSpec::Unlimited, 0);
        assert!(
            swsm_unlimited as f64 <= dm_unlimited as f64 * 1.05,
            "{program}: SWSM with an unlimited window should at least match the DM at MD=0 \
             (DM {dm_unlimited}, SWSM {swsm_unlimited})"
        );
    }
}

/// Figures 4-6: the speedup-figure generator reports the crossover
/// behaviour: a crossover exists at MD=0 for FLO52Q and TRACK within the
/// swept windows, and none exists at MD=60 for any representative program.
#[test]
fn crossover_exists_at_md0_but_not_at_md60() {
    let config = quick_config();
    for program in PerfectProgram::REPRESENTATIVE {
        let figure = speedup_figure(program, &config, &[0, 60]);
        assert_eq!(
            figure.crossover_window(60),
            None,
            "{program}: no crossover expected at MD=60"
        );
        if program != PerfectProgram::Mdg {
            assert!(
                figure.crossover_window(0).is_some(),
                "{program}: a crossover should appear at MD=0 within 128 entries"
            );
        }
    }
}

/// §5: the DM/SWSM gap at MD = 60 is large for the highly parallel FLO52Q
/// and small for the serial TRACK.
#[test]
fn the_gap_orders_flo52q_above_track() {
    let window = WindowSpec::Entries(64);
    let gap = |program: PerfectProgram| {
        let trace = program.workload().trace(200);
        let dm = dm_cycles(&trace, window, 60) as f64;
        let swsm = swsm_cycles(&trace, window, 60) as f64;
        swsm / dm
    };
    let flo = gap(PerfectProgram::Flo52q);
    let track = gap(PerfectProgram::Track);
    assert!(
        flo > 1.5 * track,
        "FLO52Q's DM advantage ({flo:.2}x) should clearly exceed TRACK's ({track:.2}x)"
    );
}

/// Table 1: with unlimited windows and MD = 60 the seven programs fall into
/// the paper's three latency-hiding bands, in the right order.
#[test]
fn table1_reproduces_the_three_bands() {
    let config = ExperimentConfig {
        iterations: 400,
        dm_windows: vec![32],
        ..quick_config()
    };
    let table = table1(&config, 60);
    let lhe = |p: PerfectProgram| table.lhe(p, WindowSpec::Unlimited).unwrap();

    let high = [
        PerfectProgram::Trfd,
        PerfectProgram::Adm,
        PerfectProgram::Flo52q,
    ];
    let moderate = [
        PerfectProgram::Dyfesm,
        PerfectProgram::Qcd,
        PerfectProgram::Mdg,
    ];

    let min_high = high.iter().map(|&p| lhe(p)).fold(f64::INFINITY, f64::min);
    let max_moderate = moderate.iter().map(|&p| lhe(p)).fold(0.0, f64::max);
    let min_moderate = moderate
        .iter()
        .map(|&p| lhe(p))
        .fold(f64::INFINITY, f64::min);
    let track = lhe(PerfectProgram::Track);

    assert!(
        min_high > max_moderate,
        "high band ({min_high:.3}) should sit above the moderate band ({max_moderate:.3})"
    );
    assert!(
        min_moderate > track,
        "moderate band ({min_moderate:.3}) should sit above TRACK ({track:.3})"
    );
    assert!(min_high > 0.7, "high band should hide most of the latency");
    assert!(track < 0.4, "TRACK should hide little of the latency");

    // The expected_band metadata on the workloads agrees with the measured bands.
    for program in PerfectProgram::ALL {
        let expected = program.expected_band();
        let measured = lhe(program);
        match expected {
            LatencyHidingBand::High => assert!(measured > 0.7, "{program}: {measured:.3}"),
            LatencyHidingBand::Moderate => {
                assert!(
                    (0.35..=0.85).contains(&measured),
                    "{program}: {measured:.3}"
                )
            }
            LatencyHidingBand::Poor => assert!(measured < 0.4, "{program}: {measured:.3}"),
        }
    }
}

/// Table 1: at realistic window sizes the LHE is far below the
/// unlimited-window LHE ("even with large window sizes we do not approach
/// the LHE of an DM with unlimited resources").
#[test]
fn finite_windows_do_not_reach_the_unlimited_window_lhe() {
    let config = ExperimentConfig {
        iterations: 300,
        dm_windows: vec![32, 128],
        ..quick_config()
    };
    let table = table1(&config, 60);
    for program in [
        PerfectProgram::Trfd,
        PerfectProgram::Flo52q,
        PerfectProgram::Mdg,
    ] {
        let at_32 = table.lhe(program, WindowSpec::Entries(32)).unwrap();
        let at_128 = table.lhe(program, WindowSpec::Entries(128)).unwrap();
        let unlimited = table.lhe(program, WindowSpec::Unlimited).unwrap();
        assert!(
            at_32 < unlimited * 0.8,
            "{program}: 32-entry LHE {at_32:.3} vs unlimited {unlimited:.3}"
        );
        assert!(at_128 <= unlimited + 1e-9, "{program}");
        assert!(
            at_32 <= at_128 + 0.05,
            "{program}: more window should not hide much less"
        );
    }
}

/// Figures 7-9 and the §5 claim: the equivalent window ratio at a realistic
/// DM window and MD = 60 is a small multiple (the paper says 2-4x; the
/// synthetic workloads land between about 2x and 6x), and the ratio grows
/// with the memory differential.
#[test]
fn equivalent_window_ratio_is_a_small_multiple_and_grows_with_md() {
    let config = quick_config();
    for program in PerfectProgram::REPRESENTATIVE {
        let figure = equivalent_window_figure(program, &config);
        let at_md60 = figure.ratio(32, 60).expect("ratio at MD=60 resolves");
        assert!(
            (1.5..8.0).contains(&at_md60),
            "{program}: ratio at MD=60 was {at_md60:.2}"
        );
        // The overall trend of figures 7-9: a large memory differential needs
        // a clearly larger equivalent window than no differential at all.
        // (Between intermediate differentials the curve can flatten or dip
        // slightly — see EXPERIMENTS.md.)
        if let Some(at_md0) = figure.ratio(32, 0) {
            assert!(
                at_md60 >= at_md0 * 0.95,
                "{program}: ratio at MD=60 ({at_md60:.2}) should not fall below the MD=0 ratio ({at_md0:.2})"
            );
        }
    }
}

/// §3: the DM's dynamic slippage makes the effective single window larger
/// than the sum of the two physical windows for a well-decoupled program.
#[test]
fn effective_single_window_exceeds_the_physical_windows() {
    let trace = PerfectProgram::Flo52q.workload().trace(300);
    let window = 24;
    let result = DecoupledMachine::new(DmConfig::paper(window, 60)).run(&trace);
    assert!(result.esw.samples > 0);
    assert!(
        result.esw.max_esw > 2 * window,
        "ESW ({}) should exceed the sum of the two {window}-entry windows",
        result.esw.max_esw
    );
}

/// Speedups are always measured against the scalar reference and are always
/// greater than one for the windowed machines.
#[test]
fn both_machines_beat_the_scalar_reference() {
    for program in PerfectProgram::ALL {
        let trace = program.workload().trace(150);
        for md in [0u64, 60] {
            let reference = scalar_cycles(&trace, md);
            for machine in [Machine::Decoupled, Machine::Superscalar] {
                let cycles =
                    dae::core::machine_cycles(machine, &trace, WindowSpec::Entries(32), md);
                let s = speedup(reference, cycles);
                assert!(s > 1.0, "{program} {machine} md={md}: speedup {s:.2}");
            }
        }
    }
}
