//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`,
//! [`criterion_group!`] / [`criterion_main!`]) backed by a simple wall-clock
//! measurement: a short warm-up, then batches until a time budget is spent,
//! reporting the best batch mean (ns/iteration).
//!
//! When the `CRITERION_STUB_JSON` environment variable names a file, every
//! measurement is appended to it as one JSON object per line
//! (`{"id": ..., "ns_per_iter": ...}`), which `scripts/bench.sh` uses to
//! assemble the repository's benchmark baseline.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs and times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: Option<f64>,
    measure_time: Duration,
}

impl Bencher {
    /// Measures `body`, keeping the fastest observed batch mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and calibration: one untimed call, then scale the batch so
        // a batch takes roughly a millisecond.
        let start = Instant::now();
        std::hint::black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let budget = self.measure_time;
        let started = Instant::now();
        let mut best = f64::INFINITY;
        let mut batches = 0u32;
        while started.elapsed() < budget || batches < 3 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            let elapsed = t0.elapsed();
            let mean = elapsed.as_nanos() as f64 / batch as f64;
            if mean < best {
                best = mean;
            }
            batches += 1;
            if batches >= 1000 {
                break;
            }
        }
        self.ns_per_iter = Some(best);
    }
}

/// The entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_time: Duration::from_millis(300),
        }
    }
}

fn report(id: &str, ns_per_iter: f64) {
    println!("bench: {id:<55} {ns_per_iter:>14.1} ns/iter");
    if let Ok(path) = std::env::var("CRITERION_STUB_JSON") {
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"id\": \"{id}\", \"ns_per_iter\": {ns_per_iter:.1}}}"
            );
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measure_time: self.measure_time,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            ns_per_iter: None,
            measure_time: self.measure_time,
        };
        f(&mut bencher);
        if let Some(ns) = bencher.ns_per_iter {
            report(id, ns);
        }
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measure_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's time budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measure_time = time;
        self
    }

    /// Benches `f` against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            ns_per_iter: None,
            measure_time: self.measure_time,
        };
        f(&mut bencher, input);
        if let Some(ns) = bencher.ns_per_iter {
            report(&format!("{}/{}", self.name, id.label), ns);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_measures_something() {
        let mut c = Criterion {
            measure_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
