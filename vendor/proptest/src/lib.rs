//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest DSL this workspace uses: the
//! [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(..)]` header, range / tuple / [`collection::vec`] /
//! [`prop_oneof!`] / `Just` / `prop_map` strategies, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a **deterministic** per-test RNG (seeded from
//!   the test name), so failures reproduce without a persistence file;
//! * there is **no shrinking** — a failing case panics with the generated
//!   values visible in the assertion message;
//! * `prop_assume!` skips the current case rather than re-sampling.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG used to drive strategies: the vendored `rand`
    /// stub's `StdRng`, seeded from a test-name hash (one RNG core for the
    /// whole workspace instead of a duplicated implementation).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Per-test configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
        /// Accepted for API compatibility; this stub never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    ((u128::from(rng.next_u64()) % span) as i128 + self.start as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union from boxed strategies.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }

        /// Boxes a strategy (helper for `prop_oneof!`).
        #[must_use]
        pub fn boxed<S: Strategy<Value = T> + 'static>(
            strategy: S,
        ) -> Box<dyn Strategy<Value = T>> {
            Box::new(strategy)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing vectors of `element` with a length drawn from
    /// `lengths`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lengths: Range<usize>,
    }

    /// Vector-of-`element` strategy with lengths in the given range.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, lengths: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lengths }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.lengths.end - self.lengths.start).max(1) as u64;
            let len = self.lengths.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                (|| $body)();
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..100, y in 1usize..10) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((1..10).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 10);
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u32), (2u32..5).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || (20..50).contains(&v));
        }

        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }
}
