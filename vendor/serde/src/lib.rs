//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! See `vendor/README.md` for why this exists.  The traits are blanket
//! implemented so that generic bounds like `T: Serialize` are always
//! satisfied; the derive macros (re-exported from the stub `serde_derive`)
//! expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned variant used by generic bounds in the real serde.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
