//! Offline stand-in for `smallvec`, providing the subset the workspace
//! uses: a vector that stores up to `N` elements inline and spills to the
//! heap beyond that, named by its backing array type (`SmallVec<[T; N]>`)
//! exactly like the real crate.
//!
//! Unlike the real `smallvec` (which manages uninitialised inline storage
//! with `unsafe` code), this stub keeps the workspace's `forbid(unsafe_code)`
//! discipline by requiring `T: Copy + Default` — the inline buffer is
//! default-initialised and elements are copied in.  Every type stored in one
//! here (dependence edges, small index lists) satisfies both bounds.  The
//! call sites are drop-in compatible with the real crate, so swapping it in
//! is a `Cargo.toml`-only change.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing storage for a [`SmallVec`]: implemented for `[T; N]` arrays.
pub trait Array {
    /// The element type.
    type Item: Copy + Default;
    /// A default-initialised array (the inline buffer before any pushes).
    fn empty() -> Self;
    /// The whole buffer as a slice.
    fn as_slice(&self) -> &[Self::Item];
    /// The whole buffer as a mutable slice.
    fn as_mut_slice(&mut self) -> &mut [Self::Item];
    /// The inline capacity `N`.
    fn capacity() -> usize;
}

impl<T: Copy + Default, const N: usize> Array for [T; N] {
    type Item = T;

    fn empty() -> Self {
        [T::default(); N]
    }

    fn as_slice(&self) -> &[T] {
        self
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        self
    }

    fn capacity() -> usize {
        N
    }
}

#[derive(Clone)]
enum Repr<A: Array> {
    Inline { buf: A, len: usize },
    Heap(Vec<A::Item>),
}

/// A vector storing up to `A::capacity()` elements inline, spilling to a
/// heap `Vec` beyond that.  Dereferences to a slice, so all read access
/// (iteration, indexing, `contains`, `len`) goes through `&[T]`.
pub struct SmallVec<A: Array> {
    repr: Repr<A>,
}

impl<A: Array> SmallVec<A> {
    /// An empty vector (inline, no allocation).
    #[must_use]
    pub fn new() -> Self {
        SmallVec {
            repr: Repr::Inline {
                buf: A::empty(),
                len: 0,
            },
        }
    }

    /// Takes ownership of `vec` (kept on the heap — no copy back inline,
    /// matching the real crate's `from_vec`).
    #[must_use]
    pub fn from_vec(vec: Vec<A::Item>) -> Self {
        SmallVec {
            repr: Repr::Heap(vec),
        }
    }

    /// Copies `slice` into a new vector, inline if it fits.
    #[must_use]
    pub fn from_slice(slice: &[A::Item]) -> Self {
        let mut v = SmallVec::new();
        v.extend(slice.iter().copied());
        v
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(vec) => vec.len(),
        }
    }

    /// Returns `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` while the elements are stored inline.
    #[must_use]
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends an element, spilling to the heap when the inline buffer is
    /// full.
    pub fn push(&mut self, value: A::Item) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < A::capacity() {
                    buf.as_mut_slice()[*len] = value;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(A::capacity() * 2);
                    vec.extend_from_slice(&buf.as_slice()[..*len]);
                    vec.push(value);
                    self.repr = Repr::Heap(vec);
                }
            }
            Repr::Heap(vec) => vec.push(value),
        }
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf.as_slice()[*len])
                }
            }
            Repr::Heap(vec) => vec.pop(),
        }
    }

    /// Clears the vector, keeping heap capacity if spilled.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(vec) => vec.clear(),
        }
    }

    /// The elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[A::Item] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf.as_slice()[..*len],
            Repr::Heap(vec) => vec,
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        match &mut self.repr {
            Repr::Inline { buf, len } => &mut buf.as_mut_slice()[..*len],
            Repr::Heap(vec) => vec,
        }
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            repr: self.repr.clone(),
        }
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];

    fn deref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        self.as_mut_slice()
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(vec: Vec<A::Item>) -> Self {
        SmallVec::from_vec(vec)
    }
}

impl<A: Array> From<&[A::Item]> for SmallVec<A> {
    fn from(slice: &[A::Item]) -> Self {
        SmallVec::from_slice(slice)
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// Owned iterator: drains through a `Vec` (the stub trades a copy for
/// simplicity; owned iteration is not on any hot path here).
impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        match self.repr {
            // The copy into a Vec is what produces the owned iterator the
            // associated type promises.
            #[allow(clippy::unnecessary_to_owned)]
            Repr::Inline { buf, len } => buf.as_slice()[..len].to_vec().into_iter(),
            Repr::Heap(vec) => vec.into_iter(),
        }
    }
}

/// Constructs a [`SmallVec`] like `vec!` (element list form only).
#[macro_export]
macro_rules! smallvec {
    () => {
        $crate::SmallVec::new()
    };
    ($($x:expr),+ $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = SmallVec<[u32; 3]>;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v = V::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn spills_to_the_heap_beyond_capacity() {
        let mut v = V::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(v[9], 9);
        assert_eq!(v.pop(), Some(9));
    }

    #[test]
    fn collects_and_compares_like_a_vec() {
        let v: V = (0..2).collect();
        let w = V::from_vec(vec![0, 1]);
        assert_eq!(v, w);
        assert!(!v.spilled());
        assert!(w.spilled(), "from_vec keeps the allocation");
        let total: u32 = (&v).into_iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn macro_matches_vec_macro_shape() {
        let v: V = smallvec![4, 5];
        assert_eq!(v.as_slice(), &[4, 5]);
        let e: V = smallvec![];
        assert!(e.is_empty());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v: V = smallvec![1, 2, 3];
        v[0] = 9;
        for x in &mut v {
            *x += 1;
        }
        assert_eq!(v.as_slice(), &[10, 3, 4]);
        v.clear();
        assert!(v.is_empty());
    }
}
