//! Offline stand-in for `rayon`.
//!
//! Supports the `into_par_iter()` / `par_iter()` → `map(..)` → `collect()`
//! shape used by the experiment sweeps, executing the mapped closure on a
//! pool of scoped threads with dynamic (work-stealing-free) load balancing:
//! workers claim items through a shared atomic cursor, so uneven sweep
//! points still pack tightly.
//!
//! Worker panics propagate to the caller, like real rayon.  The thread count
//! follows `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelMap};
}

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(items)
        .max(1)
}

fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| Mutex::new(Some(item)))
        .collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item claimed twice");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited before producing a result")
        })
        .collect()
}

/// A parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel (lazily; runs at `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParallelMap<T, F> {
        ParallelMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
#[derive(Debug)]
pub struct ParallelMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParallelMap<T, F> {
    /// Executes the map on the thread pool, preserving item order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        parallel_map(self.items, self.f).into()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Starts parallel iteration over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration over slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Starts parallel iteration over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let out: Vec<u64> = (0u64..500)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0u64..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _: Vec<u64> = vec![1u64, 2, 3]
            .into_par_iter()
            .map(|x| if x == 2 { panic!("boom") } else { x })
            .collect();
    }
}
