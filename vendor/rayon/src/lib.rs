//! Offline stand-in for `rayon` over a **persistent worker pool**.
//!
//! Supports the `into_par_iter()` / `par_iter()` → `map(..)` → `collect()`
//! shape used by the experiment sweeps, plus `rayon::spawn` for `'static`
//! fire-and-forget tasks (the streaming sweep sessions in `dae-core` feed
//! per-point jobs through it and collect results over a channel).
//!
//! Unlike the original stub — which spawned fresh scoped threads for every
//! `par_iter` call, so worker-thread-local state (the machine crate's
//! `SimPool`s) died between calls — the pool here is **long-lived**:
//!
//! * workers are spawned lazily on the first piece of submitted work and
//!   then live for the pool's lifetime, so `thread_local!` scratch on a
//!   worker stays warm across separate parallel calls;
//! * work arrives over a condvar-guarded queue; a parallel map is one
//!   shared *batch* descriptor from which workers (and the calling thread,
//!   which participates) claim **chunks** of indices through an atomic
//!   cursor, so uneven items still pack tightly;
//! * a panicking closure is caught on the worker, recorded, and re-thrown
//!   on the calling thread once the batch has fully drained — the queue is
//!   never deadlocked and the pool stays usable afterwards;
//! * dropping a [`ThreadPool`] finishes the queued work, signals shutdown
//!   and joins every worker.  (The implicit global pool lives in a static
//!   and is never dropped, like real rayon's.)
//!
//! [`PoolStats`] exposes spawn/batch/item counters so lifecycle tests can
//! assert that workers are *reused* across calls rather than respawned.
//! The thread count follows `std::thread::available_parallelism()`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Everything the call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelMap};
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

/// A lifetime-erased indexed batch: `runner(i)` processes item `i`.
///
/// The runner reference is transmuted to `'static` when the batch is built;
/// soundness rests on [`ThreadPool::run_batch`] not returning until every
/// item has been accounted for (see the SAFETY comment there), after which
/// no worker touches the runner again — exhausted batches are only popped
/// and dropped.
struct Batch {
    runner: &'static (dyn Fn(usize) + Sync),
    total: usize,
    chunk: usize,
    cursor: AtomicUsize,
    /// Set by the first panicking item; later chunks are skipped (their
    /// items still count as accounted) and the payload is re-thrown by the
    /// caller.
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Items accounted for (run or skipped after a panic); the batch is
    /// complete when this reaches `total`.
    done: Mutex<usize>,
    done_cv: Condvar,
}

impl Batch {
    /// Claims and processes chunks until the cursor is exhausted.
    fn drain(&self, items_counter: &AtomicU64) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.total {
                return;
            }
            let end = self.total.min(start + self.chunk);
            for i in start..end {
                if self.panicked.load(Ordering::Acquire) {
                    break;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.runner)(i))) {
                    let mut slot = self.panic.lock().expect("panic slot poisoned");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    self.panicked.store(true, Ordering::Release);
                }
            }
            items_counter.fetch_add((end - start) as u64, Ordering::Relaxed);
            let mut done = self.done.lock().expect("done counter poisoned");
            *done += end - start;
            if *done == self.total {
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every item has been accounted for.
    fn wait(&self) {
        let mut done = self.done.lock().expect("done counter poisoned");
        while *done < self.total {
            done = self.done_cv.wait(done).expect("done counter poisoned");
        }
    }
}

/// A unit of queued work: a shared batch handle or a boxed `'static` task.
enum Work {
    Batch(Arc<Batch>),
    Task(Box<dyn FnOnce() + Send + 'static>),
}

/// Queue state shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<Work>>,
    available: Condvar,
    shutdown: AtomicBool,
    workers_spawned: AtomicU64,
    batches: AtomicU64,
    tasks: AtomicU64,
    items: AtomicU64,
    task_panics: AtomicU64,
}

/// Reuse / lifecycle counters of a pool (diagnostics for tests; see the
/// crate docs).  `workers_spawned` staying flat across two parallel calls
/// while `batches` advances is the worker-reuse signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads ever spawned by the pool.
    pub workers_spawned: u64,
    /// Parallel batches (one per `par_iter`-style call) submitted.
    pub batches: u64,
    /// `spawn`ed tasks executed by workers.
    pub tasks: u64,
    /// Batch items executed (or skipped after a batch panic).
    pub items: u64,
    /// `spawn`ed tasks that panicked (caught by the worker, which
    /// survives; an observability hook for fault-tolerance suites).
    pub task_panics: u64,
}

/// A persistent pool of worker threads fed by a shared work queue.
///
/// Workers spawn lazily on the first submitted work and live until the pool
/// is dropped; `Drop` lets the queued work finish, then joins every worker.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool that will run `threads` workers (spawned lazily on
    /// first use; at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
                workers_spawned: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                tasks: AtomicU64::new(0),
                items: AtomicU64::new(0),
                task_panics: AtomicU64::new(0),
            }),
            threads: threads.max(1),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The number of workers the pool runs once spawned.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the pool's lifecycle counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers_spawned: self.shared.workers_spawned.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            items: self.shared.items.load(Ordering::Relaxed),
            task_panics: self.shared.task_panics.load(Ordering::Relaxed),
        }
    }

    /// Spawns the workers if this is the first work submitted.
    fn ensure_workers(&self) {
        let mut handles = self.handles.lock().expect("worker handles poisoned");
        if !handles.is_empty() {
            return;
        }
        for _ in 0..self.threads {
            let shared = Arc::clone(&self.shared);
            shared.workers_spawned.fetch_add(1, Ordering::Relaxed);
            handles.push(std::thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Enqueues `work` and wakes workers.
    fn inject(&self, work: Work) {
        self.ensure_workers();
        let mut queue = self.shared.queue.lock().expect("work queue poisoned");
        queue.push_back(work);
        drop(queue);
        self.shared.available.notify_all();
    }

    /// Runs a fire-and-forget task on the pool.  A panic inside the task is
    /// caught on the worker (the pool survives); real rayon aborts instead,
    /// so portable callers should not rely on panicking tasks.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.inject(Work::Task(Box::new(task)));
    }

    /// Runs `runner(i)` for every `i in 0..total` across the workers and
    /// the calling thread, blocking until every item is done and re-raising
    /// the first panic.
    fn run_batch(&self, total: usize, runner: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the transmute only erases the reference's lifetime so the
        // batch can sit in the long-lived queue.  `run_batch` does not
        // return before `batch.wait()` observes every item accounted for,
        // and a worker only dereferences `runner` while claiming chunks,
        // which is impossible once all items are accounted (the cursor is
        // exhausted) — so no access outlives this call frame.
        #[allow(clippy::missing_transmute_annotations)]
        let runner: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(runner) };
        let chunk = total.div_ceil(4 * self.threads).max(1);
        let batch = Arc::new(Batch {
            runner,
            total,
            chunk,
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        });
        // One queue entry per worker that could usefully join in; workers
        // finding the cursor already exhausted just drop their handle.
        let copies = self.threads.min(total.div_ceil(chunk));
        for _ in 0..copies {
            self.inject(Work::Batch(Arc::clone(&batch)));
        }
        // The calling thread participates instead of blocking — this also
        // guarantees progress for batches submitted from inside a worker.
        batch.drain(&self.shared.items);
        batch.wait();
        let payload = batch.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Maps `items` through `f` in parallel on this pool, preserving item
    /// order.  Panics in `f` propagate after the batch drains.
    pub fn map<T: Send, R: Send, F: Fn(T) -> R + Sync>(&self, items: Vec<T>, f: F) -> Vec<R> {
        let n = items.len();
        if n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let runner = |i: usize| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item claimed twice");
            let result = f(item);
            *results[i].lock().expect("result slot poisoned") = Some(result);
        };
        self.run_batch(n, &runner);
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited before producing a result")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            // The store and notify must happen under the queue mutex:
            // otherwise a worker that just observed (queue empty, shutdown
            // false) could park *after* this notify and sleep through it,
            // deadlocking the join below.
            let _queue = self.shared.queue.lock().expect("work queue poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.available.notify_all();
        }
        let mut handles = self.handles.lock().expect("worker handles poisoned");
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker body: pop work until shutdown is signalled and the queue is
/// empty.
fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("work queue poisoned");
            loop {
                if let Some(work) = queue.pop_front() {
                    break work;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).expect("work queue poisoned");
            }
        };
        match work {
            Work::Batch(batch) => batch.drain(&shared.items),
            Work::Task(task) => {
                shared.tasks.fetch_add(1, Ordering::Relaxed);
                // Keep the worker alive through a panicking task; the
                // payload is intentionally dropped (see `spawn`), but the
                // panic is counted so fault suites can observe it.
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    shared.task_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The implicit global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The implicit global pool used by `par_iter` / `spawn` (created, but not
/// yet spawning threads, on first access).
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPool::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    })
}

/// The global pool's lifecycle counters (all zero before any parallel work
/// has been submitted).
#[must_use]
pub fn global_pool_stats() -> PoolStats {
    GLOBAL
        .get()
        .map_or_else(PoolStats::default, ThreadPool::stats)
}

/// Runs a `'static` fire-and-forget task on the global pool.
pub fn spawn(task: impl FnOnce() + Send + 'static) {
    global_pool().spawn(task);
}

// ---------------------------------------------------------------------------
// The parallel-iterator facade
// ---------------------------------------------------------------------------

/// A parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel (lazily; runs at `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParallelMap<T, F> {
        ParallelMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
#[derive(Debug)]
pub struct ParallelMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParallelMap<T, F> {
    /// Executes the map on the global pool, preserving item order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        global_pool().map(self.items, self.f).into()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Starts parallel iteration over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration over slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Starts parallel iteration over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn preserves_order() {
        let out: Vec<u64> = (0u64..500)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0u64..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _: Vec<u64> = vec![1u64, 2, 3]
            .into_par_iter()
            .map(|x| if x == 2 { panic!("boom") } else { x })
            .collect();
    }

    #[test]
    fn workers_are_reused_across_calls() {
        let pool = ThreadPool::new(3);
        let a: Vec<u64> = pool.map((0u64..64).collect(), |x| x + 1);
        let before = pool.stats();
        let b: Vec<u64> = pool.map((0u64..64).collect(), |x| x + 2);
        let after = pool.stats();
        assert_eq!(a.len(), 64);
        assert_eq!(b[0], 2);
        assert_eq!(
            before.workers_spawned, after.workers_spawned,
            "second call must reuse the spawned workers"
        );
        assert_eq!(after.workers_spawned, 3);
        assert_eq!(after.batches, before.batches + 1);
    }

    #[test]
    fn workers_spawn_lazily() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.stats().workers_spawned, 0, "no work, no threads");
        let _: Vec<u64> = pool.map(vec![1u64, 2, 3], |x| x);
        assert_eq!(pool.stats().workers_spawned, 2);
    }

    #[test]
    fn drop_finishes_queued_tasks_and_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(2);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // must not hang, and must not abandon queued tasks
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn a_panicking_batch_neither_deadlocks_nor_poisons_the_pool() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<u64> = pool.map((0u64..32).collect(), |x| {
                if x == 7 {
                    panic!("kaboom");
                }
                x
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The pool must still serve work afterwards.
        let out: Vec<u64> = pool.map((0u64..32).collect(), |x| x * 3);
        assert_eq!(out[31], 93);
    }

    #[test]
    fn panicking_spawned_tasks_do_not_kill_workers() {
        let pool = ThreadPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move || {
            tx.send(()).expect("receiver alive");
            panic!("ignored");
        });
        rx.recv().expect("the task must start"); // worker is inside the task
        let out: Vec<u64> = pool.map(vec![5u64, 6], |x| x);
        assert_eq!(out, vec![5, 6], "the worker must survive the panic");
        assert_eq!(pool.stats().tasks, 1);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A batch submitted from inside a worker must make progress even if
        // every worker is busy: the submitting thread participates.
        let pool = Arc::new(ThreadPool::new(2));
        let inner = Arc::clone(&pool);
        let out: Vec<u64> = pool.map((0u64..8).collect(), move |x| {
            inner.map(vec![x, x + 1], |y| y * 2).iter().sum()
        });
        assert_eq!(out[0], 2); // 0*2 + 1*2
        assert_eq!(out[7], 30); // 7*2 + 8*2
    }

    #[test]
    fn thread_local_state_survives_across_calls() {
        thread_local! {
            static HITS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        let pool = ThreadPool::new(2);
        let warm = |(): ()| {
            HITS.with(|h| {
                let was = h.get();
                h.set(was + 1);
                was
            })
        };
        let _: Vec<u64> = pool.map(vec![(); 64], warm);
        let second: Vec<u64> = pool.map(vec![(); 64], warm);
        // Some worker executed items in both calls, so some item of the
        // second call observed a warm (non-zero) counter.
        assert!(
            second.iter().any(|&was| was > 0),
            "thread-local state should survive between parallel calls"
        );
    }

    #[test]
    fn global_spawn_runs_tasks() {
        let (tx, rx) = std::sync::mpsc::channel();
        spawn(move || {
            let _ = tx.send(41u64 + 1);
        });
        assert_eq!(rx.recv().expect("task ran"), 42);
        assert!(global_pool_stats().tasks >= 1);
    }
}
