//! Offline stand-in for `rayon` over a **work-stealing persistent pool**.
//!
//! Supports the `into_par_iter()` / `par_iter()` → `map(..)` → `collect()`
//! shape used by the experiment sweeps, plus `rayon::spawn` for `'static`
//! fire-and-forget tasks (the streaming sweep sessions in `dae-core` feed
//! per-point jobs through it and collect results over a channel) and
//! [`ThreadPool::spawn_prioritized`] for tasks tagged with a [`Priority`]
//! band, a client id and an optional cancellation flag.
//!
//! Unlike the original stub — which fed every worker from one shared
//! condvar-guarded FIFO queue — scheduling here is the real-rayon design:
//!
//! * **Per-worker deques with stealing.**  A parallel map is split into
//!   contiguous index *spans* distributed across per-worker deques.  A
//!   worker splits its span in half as it goes, pushing the upper half back
//!   onto its own deque (LIFO — it pops its own most-recent split next, for
//!   locality), while idle workers steal the *oldest, largest* span from a
//!   victim's deque (FIFO).  Skewed per-item costs therefore rebalance at
//!   the grid tail instead of idling workers.  The calling thread
//!   participates as before (it steals spans of its own batch), so batches
//!   submitted from inside a worker always make progress.
//! * **A priority dispatcher for spawned tasks.**  `spawn`ed jobs enter a
//!   central three-band dispatcher (interactive > normal > bulk); within a
//!   band, per-client FIFO queues are served round-robin, so one client's
//!   10k-point grid cannot freeze another client's single-point probe.
//!   Workers claim the interactive band before their own deque, and the
//!   normal/bulk bands before stealing.
//! * **Claim-time cancellation drop.**  A job whose cancellation flag is
//!   already set when a worker claims it is drained in bulk (the whole
//!   cancelled prefix of the queue in one claim) and executed only in its
//!   short-circuit form — the job closures observe their token and account
//!   themselves as skipped — instead of occupying fair-share turns one
//!   dispatch cycle at a time.  [`PoolStats::claim_drops`] counts them.
//! * Workers are spawned lazily on the first piece of submitted work and
//!   live for the pool's lifetime, so `thread_local!` scratch (the machine
//!   crate's `SimPool`s) stays warm across separate parallel calls.
//! * A panicking closure is caught on the worker, recorded, and re-thrown
//!   on the calling thread once the batch has fully drained — remaining
//!   spans of a panicked batch are skipped (but still accounted) and the
//!   pool stays usable afterwards.
//! * Dropping a [`ThreadPool`] finishes the queued work, signals shutdown
//!   and joins every worker.  (The implicit global pool lives in a static
//!   and is never dropped, like real rayon's.)
//!
//! [`PoolStats`] exposes spawn/batch/item counters plus steal, local-pop,
//! victim-visit and claim-drop counters and per-band queue-depth gauges, so
//! lifecycle tests can assert reuse *and* scheduling behaviour.  The thread
//! count follows `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelMap};
}

// ---------------------------------------------------------------------------
// Priorities
// ---------------------------------------------------------------------------

/// The scheduling band of a spawned task: workers always serve a higher
/// band before a lower one, and serve clients round-robin within a band.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive probes: claimed before everything else, including
    /// the claiming worker's own batch spans.
    Interactive,
    /// The default band (plain `spawn` lands here).
    #[default]
    Normal,
    /// Throughput work that must never starve the other bands.
    Bulk,
}

impl Priority {
    /// All bands, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Bulk];

    /// The band's index, 0 (most urgent) to 2.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The band's wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }

    /// Parses a wire token (`interactive` / `normal` / `bulk`).
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "interactive" => Some(Priority::Interactive),
            "normal" => Some(Priority::Normal),
            "bulk" => Some(Priority::Bulk),
            _ => None,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for Priority {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, ()> {
        Priority::parse(s).ok_or(())
    }
}

// ---------------------------------------------------------------------------
// Batches and spans
// ---------------------------------------------------------------------------

/// A lifetime-erased indexed batch: `runner(i)` processes item `i`.
///
/// The runner reference is transmuted to `'static` when the batch is built;
/// soundness rests on [`ThreadPool::run_batch`] not returning until every
/// item has been accounted for (see the SAFETY comment there).  An item is
/// accounted *after* its runner call returns, so `done == total` implies no
/// thread is inside the runner.
struct Batch {
    runner: &'static (dyn Fn(usize) + Sync),
    total: usize,
    /// Set by the first panicking item; later spans are skipped (their
    /// items still count as accounted) and the payload is re-thrown by the
    /// caller.
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Items accounted for (run or skipped after a panic); the batch is
    /// complete when this reaches `total`.
    done: Mutex<usize>,
    done_cv: Condvar,
}

impl Batch {
    /// Accounts `k` items as finished, waking the waiting caller when the
    /// batch completes.
    fn account(&self, k: usize, items_counter: &AtomicU64) {
        items_counter.fetch_add(k as u64, Ordering::Relaxed);
        let mut done = self.done.lock().expect("done counter poisoned");
        *done += k;
        if *done == self.total {
            self.done_cv.notify_all();
        }
    }

    /// Waits up to `timeout` for completion; returns whether the batch is
    /// complete.
    fn wait_done_for(&self, timeout: Duration) -> bool {
        let done = self.done.lock().expect("done counter poisoned");
        if *done == self.total {
            return true;
        }
        let (done, _) = self
            .done_cv
            .wait_timeout(done, timeout)
            .expect("done counter poisoned");
        *done == self.total
    }

    /// Records a panic payload (first writer wins) and poisons the batch.
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.panicked.store(true, Ordering::Release);
    }
}

/// A contiguous index range `[lo, hi)` of a batch, resident in a deque.
struct Span {
    batch: Arc<Batch>,
    lo: usize,
    hi: usize,
}

// ---------------------------------------------------------------------------
// The priority dispatcher
// ---------------------------------------------------------------------------

/// A queued `'static` task plus its optional cancellation flag.
struct Job {
    cancelled: Option<Arc<AtomicBool>>,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// One client's FIFO of queued jobs within a band.
struct ClientQueue {
    client: u64,
    jobs: VecDeque<Job>,
}

/// One priority band: per-client FIFO queues served round-robin.
struct Band {
    /// Sorted by client id (insertion keeps the order).
    queues: Vec<ClientQueue>,
    /// The client served last; the next claim starts after it (wrapping),
    /// which is what makes service within the band fair-share.
    last_served: u64,
}

/// The central queue for spawned tasks: three bands, claimed in order.
struct Dispatcher {
    bands: [Band; 3],
}

impl Dispatcher {
    fn new() -> Self {
        Dispatcher {
            bands: std::array::from_fn(|_| Band {
                queues: Vec::new(),
                last_served: u64::MAX,
            }),
        }
    }

    fn push(&mut self, band: usize, client: u64, job: Job) {
        let band = &mut self.bands[band];
        match band.queues.binary_search_by_key(&client, |q| q.client) {
            Ok(i) => band.queues[i].jobs.push_back(job),
            Err(i) => band.queues.insert(
                i,
                ClientQueue {
                    client,
                    jobs: VecDeque::from_iter([job]),
                },
            ),
        }
    }

    /// Claims from one band: round-robin over clients, FIFO within a
    /// client (FIFO order *is* request age).  Jobs whose cancellation flag
    /// is already set are drained into `dropped` — the whole cancelled
    /// prefix in one claim — and the first live job (if any) is returned.
    fn pop(&mut self, band: usize) -> (Option<Job>, Vec<Job>) {
        let band = &mut self.bands[band];
        let mut dropped = Vec::new();
        let mut live = None;
        if !band.queues.is_empty() {
            let n = band.queues.len();
            let start = band
                .queues
                .iter()
                .position(|q| q.client > band.last_served)
                .unwrap_or(0);
            'scan: for off in 0..n {
                let queue = &mut band.queues[(start + off) % n];
                while let Some(job) = queue.jobs.pop_front() {
                    let cancelled = job
                        .cancelled
                        .as_ref()
                        .is_some_and(|flag| flag.load(Ordering::Acquire));
                    if cancelled {
                        dropped.push(job);
                    } else {
                        band.last_served = queue.client;
                        live = Some(job);
                        break 'scan;
                    }
                }
            }
            band.queues.retain(|q| !q.jobs.is_empty());
        }
        (live, dropped)
    }
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

thread_local! {
    /// Identifies the pool (by id) and worker index of the current thread.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Pool identities for the `WORKER` thread-local (never reused).
static POOL_IDS: AtomicU64 = AtomicU64::new(0);

/// State shared between the pool handle and its workers.
struct Shared {
    id: u64,
    /// One span deque per worker: the owner pushes/pops the back (LIFO),
    /// thieves pop the front (FIFO — the oldest span is the largest).
    deques: Vec<Mutex<VecDeque<Span>>>,
    dispatcher: Mutex<Dispatcher>,
    /// Sleep coordination: workers park on `wake` under `sleep` after
    /// re-checking `epoch`; every push bumps `epoch` *before* notifying,
    /// so a worker that scanned stale state re-scans instead of sleeping
    /// through the wakeup.
    sleep: Mutex<()>,
    wake: Condvar,
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    // Lifecycle and scheduling counters (see `PoolStats`).
    workers_spawned: AtomicU64,
    batches: AtomicU64,
    tasks: AtomicU64,
    items: AtomicU64,
    task_panics: AtomicU64,
    steals: AtomicU64,
    steal_attempts: AtomicU64,
    local_pops: AtomicU64,
    claim_drops: AtomicU64,
    /// Per-band queued-job depth gauges (interactive, normal, bulk).
    queued: [AtomicU64; 3],
}

impl Shared {
    /// Announces new work: bump the epoch, then wake parked workers.  The
    /// epoch bump must precede the sleeper check — a worker that scanned
    /// before the push re-checks the epoch under the sleep mutex before
    /// waiting, so the wakeup cannot be lost.
    fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        if self.sleepers.load(Ordering::Acquire) > 0 {
            let _guard = self.sleep.lock().expect("sleep mutex poisoned");
            self.wake.notify_all();
        }
    }

    /// Pushes a span onto deque `target` and wakes workers.
    fn push_span(&self, target: usize, span: Span) {
        self.deques[target]
            .lock()
            .expect("span deque poisoned")
            .push_back(span);
        self.notify();
    }
}

/// Reuse / lifecycle counters of a pool (diagnostics for tests; see the
/// crate docs).  `workers_spawned` staying flat across two parallel calls
/// while `batches` advances is the worker-reuse signal; `steals` vs
/// `local_pops` is the work-distribution signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads ever spawned by the pool.
    pub workers_spawned: u64,
    /// Parallel batches (one per `par_iter`-style call) submitted.
    pub batches: u64,
    /// Queued tasks executed by workers (including claim-dropped jobs run
    /// in their short-circuit form).
    pub tasks: u64,
    /// Batch items executed (or skipped after a batch panic).
    pub items: u64,
    /// Queued tasks that panicked (caught by the worker, which survives;
    /// an observability hook for fault-tolerance suites).
    pub task_panics: u64,
    /// Spans taken from another worker's deque (successful steals).
    pub steals: u64,
    /// Victim deques inspected while trying to steal (visits, successful
    /// or not).
    pub steal_attempts: u64,
    /// Spans a worker popped back off its own deque (LIFO locality hits).
    pub local_pops: u64,
    /// Jobs whose cancellation flag was already set at claim time, drained
    /// in bulk and run only in their short-circuit form.
    pub claim_drops: u64,
    /// Jobs currently queued in the interactive band (a gauge, not
    /// monotone).
    pub queued_interactive: u64,
    /// Jobs currently queued in the normal band (a gauge).
    pub queued_normal: u64,
    /// Jobs currently queued in the bulk band (a gauge).
    pub queued_bulk: u64,
}

/// A persistent pool of work-stealing worker threads.
///
/// Workers spawn lazily on the first submitted work and live until the pool
/// is dropped; `Drop` lets the queued work finish, then joins every worker.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool that will run `threads` workers (spawned lazily on
    /// first use; at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        ThreadPool {
            shared: Arc::new(Shared {
                id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
                deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
                dispatcher: Mutex::new(Dispatcher::new()),
                sleep: Mutex::new(()),
                wake: Condvar::new(),
                epoch: AtomicU64::new(0),
                sleepers: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                workers_spawned: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                tasks: AtomicU64::new(0),
                items: AtomicU64::new(0),
                task_panics: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                steal_attempts: AtomicU64::new(0),
                local_pops: AtomicU64::new(0),
                claim_drops: AtomicU64::new(0),
                queued: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            }),
            threads,
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The number of workers the pool runs once spawned.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the pool's lifecycle counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared;
        PoolStats {
            workers_spawned: s.workers_spawned.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            tasks: s.tasks.load(Ordering::Relaxed),
            items: s.items.load(Ordering::Relaxed),
            task_panics: s.task_panics.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            steal_attempts: s.steal_attempts.load(Ordering::Relaxed),
            local_pops: s.local_pops.load(Ordering::Relaxed),
            claim_drops: s.claim_drops.load(Ordering::Relaxed),
            queued_interactive: s.queued[0].load(Ordering::Relaxed),
            queued_normal: s.queued[1].load(Ordering::Relaxed),
            queued_bulk: s.queued[2].load(Ordering::Relaxed),
        }
    }

    /// Spawns the workers if this is the first work submitted.
    fn ensure_workers(&self) {
        let mut handles = self.handles.lock().expect("worker handles poisoned");
        if !handles.is_empty() {
            return;
        }
        for index in 0..self.threads {
            let shared = Arc::clone(&self.shared);
            shared.workers_spawned.fetch_add(1, Ordering::Relaxed);
            handles.push(std::thread::spawn(move || worker_loop(&shared, index)));
        }
    }

    /// Runs a fire-and-forget task on the pool (normal band, client 0).  A
    /// panic inside the task is caught on the worker (the pool survives);
    /// real rayon aborts instead, so portable callers should not rely on
    /// panicking tasks.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.spawn_prioritized(Priority::Normal, 0, None, task);
    }

    /// Queues a task in `priority`'s band under `client`'s FIFO queue.
    /// Within a band, clients are served round-robin; a task whose
    /// `cancelled` flag is set by the time a worker claims it is drained
    /// without occupying a fair-share turn (the closure still runs, in
    /// whatever short-circuit form it takes when its token is cancelled,
    /// so submitter-side accounting — e.g. a stream's `skipped` counter —
    /// stays balanced).
    pub fn spawn_prioritized(
        &self,
        priority: Priority,
        client: u64,
        cancelled: Option<Arc<AtomicBool>>,
        task: impl FnOnce() + Send + 'static,
    ) {
        self.ensure_workers();
        let band = priority.index();
        self.shared
            .dispatcher
            .lock()
            .expect("dispatcher poisoned")
            .push(
                band,
                client,
                Job {
                    cancelled,
                    run: Box::new(task),
                },
            );
        self.shared.queued[band].fetch_add(1, Ordering::Relaxed);
        self.shared.notify();
    }

    /// Runs `runner(i)` for every `i in 0..total` across the workers and
    /// the calling thread, blocking until every item is done and re-raising
    /// the first panic.
    fn run_batch(&self, total: usize, runner: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the transmute only erases the reference's lifetime so the
        // batch can sit in the long-lived deques.  `run_batch` does not
        // return before the batch's `done` counter reaches `total`; an item
        // is accounted only after its runner call returns (or is skipped
        // without calling the runner), and a span's items stay unaccounted
        // while it sits in a deque or is being processed — so once the
        // caller observes completion, no span of this batch exists anywhere
        // and no thread can touch `runner` again.
        #[allow(clippy::missing_transmute_annotations)]
        let runner: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(runner) };
        let batch = Arc::new(Batch {
            runner,
            total,
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        });
        self.ensure_workers();
        // A worker submitting a nested batch keeps the spans on its own
        // deque (they sit above its outer spans, and LIFO pops find them
        // first); an external caller spreads one span per worker.
        let me = WORKER
            .with(Cell::get)
            .and_then(|(id, index)| (id == self.shared.id).then_some(index));
        let spans = self.threads.min(total);
        let per = total.div_ceil(spans);
        let mut lo = 0;
        let mut slot = 0;
        while lo < total {
            let hi = total.min(lo + per);
            let target = me.unwrap_or(slot % self.threads);
            self.shared.push_span(
                target,
                Span {
                    batch: Arc::clone(&batch),
                    lo,
                    hi,
                },
            );
            lo = hi;
            slot += 1;
        }
        // The calling thread participates instead of blocking — this also
        // guarantees progress for batches submitted from inside a worker.
        // It takes only spans of its *own* batch (so it cannot get stuck
        // behind another caller's long item) and pushes its splits back
        // where it found them.
        loop {
            if let Some((target, span)) = self.claim_own_span(&batch, me) {
                process_span(&self.shared, span, target);
                continue;
            }
            if batch.wait_done_for(Duration::from_millis(1)) {
                break;
            }
        }
        let payload = batch.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Finds a span of `batch` for the caller to process: the caller's own
    /// deque first (newest split, LIFO) when it is a worker of this pool,
    /// then other deques (oldest span first, like a thief).  Returns the
    /// deque index the span came from — splits go back there.
    fn claim_own_span(&self, batch: &Arc<Batch>, me: Option<usize>) -> Option<(usize, Span)> {
        if let Some(index) = me {
            let mut deque = self.shared.deques[index]
                .lock()
                .expect("span deque poisoned");
            if let Some(pos) = deque.iter().rposition(|s| Arc::ptr_eq(&s.batch, batch)) {
                let span = deque.remove(pos).expect("position just found");
                drop(deque);
                self.shared.local_pops.fetch_add(1, Ordering::Relaxed);
                return Some((index, span));
            }
        }
        let n = self.shared.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            self.shared.steal_attempts.fetch_add(1, Ordering::Relaxed);
            let mut deque = self.shared.deques[victim]
                .lock()
                .expect("span deque poisoned");
            if let Some(pos) = deque.iter().position(|s| Arc::ptr_eq(&s.batch, batch)) {
                let span = deque.remove(pos).expect("position just found");
                drop(deque);
                self.shared.steals.fetch_add(1, Ordering::Relaxed);
                return Some((victim, span));
            }
        }
        None
    }

    /// Maps `items` through `f` in parallel on this pool, preserving item
    /// order.  Panics in `f` propagate after the batch drains.
    pub fn map<T: Send, R: Send, F: Fn(T) -> R + Sync>(&self, items: Vec<T>, f: F) -> Vec<R> {
        let n = items.len();
        if n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let runner = |i: usize| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item claimed twice");
            let result = f(item);
            *results[i].lock().expect("result slot poisoned") = Some(result);
        };
        self.run_batch(n, &runner);
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited before producing a result")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            // The store and notify must happen under the sleep mutex:
            // otherwise a worker that just observed (no work, shutdown
            // false) could park *after* this notify and sleep through it,
            // deadlocking the join below.
            let _guard = self.shared.sleep.lock().expect("sleep mutex poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.wake.notify_all();
        }
        let mut handles = self.handles.lock().expect("worker handles poisoned");
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Worker internals
// ---------------------------------------------------------------------------

/// Processes a span: repeatedly split off the upper half onto deque
/// `target` (stealable) and keep the lower, run the single remaining item,
/// account it.  A panicked batch's spans are accounted without running.
fn process_span(shared: &Shared, span: Span, target: usize) {
    let Span { batch, lo, mut hi } = span;
    loop {
        if batch.panicked.load(Ordering::Acquire) {
            batch.account(hi - lo, &shared.items);
            return;
        }
        if hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            shared.push_span(
                target,
                Span {
                    batch: Arc::clone(&batch),
                    lo: mid,
                    hi,
                },
            );
            hi = mid;
        } else {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.runner)(lo))) {
                batch.record_panic(payload);
            }
            batch.account(1, &shared.items);
            return;
        }
    }
}

/// Runs one claimed dispatcher job under `catch_unwind`.
fn run_job(shared: &Shared, job: Job) {
    shared.tasks.fetch_add(1, Ordering::Relaxed);
    if catch_unwind(AssertUnwindSafe(job.run)).is_err() {
        shared.task_panics.fetch_add(1, Ordering::Relaxed);
    }
}

/// Claims from one dispatcher band; returns whether any progress was made
/// (a live job run, or cancelled jobs drained).
fn claim_band(shared: &Shared, band: usize) -> bool {
    if shared.queued[band].load(Ordering::Acquire) == 0 {
        return false;
    }
    let (live, dropped) = shared
        .dispatcher
        .lock()
        .expect("dispatcher poisoned")
        .pop(band);
    let claimed = dropped.len() + usize::from(live.is_some());
    if claimed == 0 {
        return false;
    }
    shared.queued[band].fetch_sub(claimed as u64, Ordering::Relaxed);
    if !dropped.is_empty() {
        shared
            .claim_drops
            .fetch_add(dropped.len() as u64, Ordering::Relaxed);
        for job in dropped {
            run_job(shared, job);
        }
    }
    if let Some(job) = live {
        run_job(shared, job);
    }
    true
}

/// One scheduling round of a worker: interactive band, then the worker's
/// own deque (LIFO), then the normal and bulk bands, then stealing (FIFO
/// from each victim).  Returns whether any work was done.
fn find_and_run_work(shared: &Shared, index: usize) -> bool {
    if claim_band(shared, 0) {
        return true;
    }
    let span = shared.deques[index]
        .lock()
        .expect("span deque poisoned")
        .pop_back();
    if let Some(span) = span {
        shared.local_pops.fetch_add(1, Ordering::Relaxed);
        process_span(shared, span, index);
        return true;
    }
    if claim_band(shared, 1) || claim_band(shared, 2) {
        return true;
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (index + off) % n;
        shared.steal_attempts.fetch_add(1, Ordering::Relaxed);
        let span = shared.deques[victim]
            .lock()
            .expect("span deque poisoned")
            .pop_front();
        if let Some(span) = span {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            process_span(shared, span, index);
            return true;
        }
    }
    false
}

/// The worker body: scheduling rounds until shutdown is signalled and no
/// work remains (queued work is drained before exit).
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id, index))));
    loop {
        let epoch = shared.epoch.load(Ordering::Acquire);
        if find_and_run_work(shared, index) {
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut guard = shared.sleep.lock().expect("sleep mutex poisoned");
        shared.sleepers.fetch_add(1, Ordering::Release);
        while shared.epoch.load(Ordering::Acquire) == epoch
            && !shared.shutdown.load(Ordering::Acquire)
        {
            guard = shared.wake.wait(guard).expect("sleep mutex poisoned");
        }
        shared.sleepers.fetch_sub(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// The implicit global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The implicit global pool used by `par_iter` / `spawn` (created, but not
/// yet spawning threads, on first access).
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPool::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    })
}

/// The global pool's lifecycle counters (all zero before any parallel work
/// has been submitted).
#[must_use]
pub fn global_pool_stats() -> PoolStats {
    GLOBAL
        .get()
        .map_or_else(PoolStats::default, ThreadPool::stats)
}

/// Runs a `'static` fire-and-forget task on the global pool (normal band).
pub fn spawn(task: impl FnOnce() + Send + 'static) {
    global_pool().spawn(task);
}

/// Runs a `'static` task on the global pool in `priority`'s band under
/// `client`'s fair-share queue, with an optional claim-time cancellation
/// flag.  See [`ThreadPool::spawn_prioritized`].
pub fn spawn_prioritized(
    priority: Priority,
    client: u64,
    cancelled: Option<Arc<AtomicBool>>,
    task: impl FnOnce() + Send + 'static,
) {
    global_pool().spawn_prioritized(priority, client, cancelled, task);
}

// ---------------------------------------------------------------------------
// The parallel-iterator facade
// ---------------------------------------------------------------------------

/// A parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel (lazily; runs at `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParallelMap<T, F> {
        ParallelMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
#[derive(Debug)]
pub struct ParallelMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParallelMap<T, F> {
    /// Executes the map on the global pool, preserving item order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        global_pool().map(self.items, self.f).into()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Starts parallel iteration over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration over slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Starts parallel iteration over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn preserves_order() {
        let out: Vec<u64> = (0u64..500)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0u64..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _: Vec<u64> = vec![1u64, 2, 3]
            .into_par_iter()
            .map(|x| if x == 2 { panic!("boom") } else { x })
            .collect();
    }

    #[test]
    fn workers_are_reused_across_calls() {
        let pool = ThreadPool::new(3);
        let a: Vec<u64> = pool.map((0u64..64).collect(), |x| x + 1);
        let before = pool.stats();
        let b: Vec<u64> = pool.map((0u64..64).collect(), |x| x + 2);
        let after = pool.stats();
        assert_eq!(a.len(), 64);
        assert_eq!(b[0], 2);
        assert_eq!(
            before.workers_spawned, after.workers_spawned,
            "second call must reuse the spawned workers"
        );
        assert_eq!(after.workers_spawned, 3);
        assert_eq!(after.batches, before.batches + 1);
    }

    #[test]
    fn workers_spawn_lazily() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.stats().workers_spawned, 0, "no work, no threads");
        let _: Vec<u64> = pool.map(vec![1u64, 2, 3], |x| x);
        assert_eq!(pool.stats().workers_spawned, 2);
    }

    #[test]
    fn drop_finishes_queued_tasks_and_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(2);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // must not hang, and must not abandon queued tasks
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn a_panicking_batch_neither_deadlocks_nor_poisons_the_pool() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<u64> = pool.map((0u64..32).collect(), |x| {
                if x == 7 {
                    panic!("kaboom");
                }
                x
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The pool must still serve work afterwards.
        let out: Vec<u64> = pool.map((0u64..32).collect(), |x| x * 3);
        assert_eq!(out[31], 93);
    }

    #[test]
    fn panicking_spawned_tasks_do_not_kill_workers() {
        let pool = ThreadPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move || {
            tx.send(()).expect("receiver alive");
            panic!("ignored");
        });
        rx.recv().expect("the task must start"); // worker is inside the task
        let out: Vec<u64> = pool.map(vec![5u64, 6], |x| x);
        assert_eq!(out, vec![5, 6], "the worker must survive the panic");
        assert_eq!(pool.stats().tasks, 1);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A batch submitted from inside a worker must make progress even if
        // every worker is busy: the submitting thread participates.
        let pool = Arc::new(ThreadPool::new(2));
        let inner = Arc::clone(&pool);
        let out: Vec<u64> = pool.map((0u64..8).collect(), move |x| {
            inner.map(vec![x, x + 1], |y| y * 2).iter().sum()
        });
        assert_eq!(out[0], 2); // 0*2 + 1*2
        assert_eq!(out[7], 30); // 7*2 + 8*2
    }

    #[test]
    fn thread_local_state_survives_across_calls() {
        thread_local! {
            static HITS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        let pool = ThreadPool::new(2);
        let warm = |(): ()| {
            HITS.with(|h| {
                let was = h.get();
                h.set(was + 1);
                was
            })
        };
        let _: Vec<u64> = pool.map(vec![(); 64], warm);
        let second: Vec<u64> = pool.map(vec![(); 64], warm);
        // Some worker executed items in both calls, so some item of the
        // second call observed a warm (non-zero) counter.
        assert!(
            second.iter().any(|&was| was > 0),
            "thread-local state should survive between parallel calls"
        );
    }

    #[test]
    fn global_spawn_runs_tasks() {
        let (tx, rx) = std::sync::mpsc::channel();
        spawn(move || {
            let _ = tx.send(41u64 + 1);
        });
        assert_eq!(rx.recv().expect("task ran"), 42);
        assert!(global_pool_stats().tasks >= 1);
    }

    #[test]
    fn priority_tokens_roundtrip() {
        for p in Priority::ALL {
            assert_eq!(Priority::parse(p.token()), Some(p));
            assert_eq!(p.token().parse::<Priority>(), Ok(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::Interactive.index() < Priority::Bulk.index());
    }

    /// A single-worker pool wedged on a gate task claims a queued
    /// interactive job before the bulk backlog queued ahead of it.
    #[test]
    fn interactive_jobs_overtake_a_queued_bulk_backlog() {
        let pool = ThreadPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        pool.spawn(move || {
            ready_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opened");
        });
        ready_rx.recv().expect("worker wedged on the gate");
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8u64 {
            let order = Arc::clone(&order);
            pool.spawn_prioritized(Priority::Bulk, 1, None, move || {
                order.lock().expect("order").push(format!("bulk{i}"));
            });
        }
        let order_i = Arc::clone(&order);
        pool.spawn_prioritized(Priority::Interactive, 2, None, move || {
            order_i
                .lock()
                .expect("order")
                .push("interactive".to_string());
        });
        assert!(pool.stats().queued_bulk >= 8);
        gate_tx.send(()).expect("worker alive");
        drop(pool); // drains everything
        let order = Arc::try_unwrap(order)
            .expect("workers joined")
            .into_inner()
            .expect("order");
        assert_eq!(
            order.first().map(String::as_str),
            Some("interactive"),
            "the interactive job must run before the queued bulk backlog: {order:?}"
        );
        assert_eq!(order.len(), 9, "every queued job still runs");
    }

    /// Two clients sharing a band are served round-robin, not
    /// submission-FIFO: a late second client is interleaved, not appended.
    #[test]
    fn clients_within_a_band_are_interleaved_fairly() {
        let pool = ThreadPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        pool.spawn(move || {
            ready_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opened");
        });
        ready_rx.recv().expect("worker wedged on the gate");
        let order = Arc::new(Mutex::new(Vec::new()));
        for client in [1u64, 2] {
            for i in 0..4u64 {
                let order = Arc::clone(&order);
                pool.spawn_prioritized(Priority::Bulk, client, None, move || {
                    order.lock().expect("order").push((client, i));
                });
            }
        }
        gate_tx.send(()).expect("worker alive");
        drop(pool);
        let order = Arc::try_unwrap(order)
            .expect("workers joined")
            .into_inner()
            .expect("order");
        // Fair-share: client 2's first job must not wait behind all four of
        // client 1's (strict FIFO would run (1,0)(1,1)(1,2)(1,3) first).
        let first_c2 = order
            .iter()
            .position(|&(c, _)| c == 2)
            .expect("client 2 ran");
        assert!(
            first_c2 <= 1,
            "client 2 must be interleaved round-robin, got order {order:?}"
        );
        // FIFO within each client (queue order is request age).
        for client in [1u64, 2] {
            let per: Vec<u64> = order
                .iter()
                .filter(|&&(c, _)| c == client)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(per, vec![0, 1, 2, 3], "client {client} must stay FIFO");
        }
    }

    /// Jobs whose cancellation flag is set while queued are drained at
    /// claim time (counted, still run in short-circuit form) rather than
    /// dispatched one fair-share turn at a time.
    #[test]
    fn cancelled_jobs_are_dropped_at_claim_time() {
        let pool = ThreadPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        pool.spawn(move || {
            ready_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opened");
        });
        ready_rx.recv().expect("worker wedged on the gate");
        let flag = Arc::new(AtomicBool::new(false));
        let skipped = Arc::new(AtomicUsize::new(0));
        let executed = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let flag = Arc::clone(&flag);
            let skipped = Arc::clone(&skipped);
            let executed = Arc::clone(&executed);
            pool.spawn_prioritized(Priority::Bulk, 1, Some(Arc::clone(&flag)), move || {
                // The short-circuit shape every cancellable job has: check
                // the token, account, skip the expensive part.
                if flag.load(Ordering::Acquire) {
                    skipped.fetch_add(1, Ordering::Relaxed);
                } else {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        flag.store(true, Ordering::Release); // cancel while everything is queued
        gate_tx.send(()).expect("worker alive");
        while skipped.load(Ordering::Relaxed) < 16 {
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(
            stats.claim_drops, 16,
            "the whole backlog drains as claim drops"
        );
        assert_eq!(executed.load(Ordering::Relaxed), 0, "none may run live");
        drop(pool);
    }

    /// Stealing really happens: a multi-worker pool with one worker wedged
    /// mid-item lets the others steal its remaining spans.
    #[test]
    fn idle_workers_steal_from_a_busy_victim() {
        let pool = ThreadPool::new(4);
        let before = pool.stats();
        // One expensive item (the victim worker sits in it) plus many cheap
        // ones initially placed across deques; the cheap workers finish and
        // then steal the slow worker's remaining span halves.
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in = Arc::clone(&ran);
        let _: Vec<()> = pool.map((0..256usize).collect(), move |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            ran_in.fetch_add(1, Ordering::Relaxed);
        });
        let after = pool.stats();
        assert_eq!(ran.load(Ordering::Relaxed), 256);
        assert_eq!(after.items - before.items, 256);
        assert!(
            after.steals > before.steals || after.local_pops > before.local_pops,
            "span scheduling must be observable in the counters: {after:?}"
        );
    }
}
