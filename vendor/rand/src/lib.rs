//! Offline stand-in for `rand`, providing the subset the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open integer ranges,
//! and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and unrelated to the real `StdRng` stream (callers here only rely on
//! determinism per seed, not on a specific stream).

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[low, high)`.
    fn sample_range(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_range(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                let value = (u128::from(rng.next_u64()) % span) as i128 + low as i128;
                value as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of the real `Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of uniform mantissa, the standard conversion.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (subset of the real `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API stand-in for the real
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..100);
            assert!((0..100).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
