//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace derives the serde traits on its data types so that results
//! can be serialised once a real `serde` is available, but nothing calls the
//! serialisation machinery at runtime in this offline build.  The derives
//! therefore expand to nothing: the marker traits in the stub `serde` crate
//! have blanket implementations.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
